//! JSONL wire format for `rmts-cli serve-batch`.
//!
//! One request per input line, one response record per output line, same
//! order. A request line is a serialized [`AnalyzeRequest`]; a response
//! line is a [`ResponseRecord`] — the [`AnalysisOutcome`] plus routing
//! metadata (shard, memo hit, canonical hash).

use crate::request::{AnalysisOutcome, AnalyzeRequest, Response};
use serde::{Deserialize, Serialize};

/// The serialized form of a [`Response`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseRecord {
    /// Position in the batch.
    pub index: usize,
    /// Canonical-form routing hash, hex.
    pub canonical_hash: String,
    /// Shard that served the request.
    pub shard: usize,
    /// Whether the memo table answered.
    pub memo_hit: bool,
    /// The analysis answer.
    pub outcome: AnalysisOutcome,
}

impl From<&Response> for ResponseRecord {
    fn from(r: &Response) -> Self {
        ResponseRecord {
            index: r.index,
            canonical_hash: format!("{:016x}", r.canonical_hash),
            shard: r.shard,
            memo_hit: r.memo_hit,
            outcome: (*r.outcome).clone(),
        }
    }
}

/// Parses a JSONL request stream. Blank lines and `#` comments are
/// skipped; the error names the offending (1-based) line.
pub fn parse_requests(input: &str) -> Result<Vec<AnalyzeRequest>, String> {
    let mut reqs = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let req: AnalyzeRequest =
            serde_json::from_str(line).map_err(|e| format!("request line {}: {e}", i + 1))?;
        reqs.push(req);
    }
    Ok(reqs)
}

/// Renders responses as JSONL, one [`ResponseRecord`] per line, in the
/// given order.
pub fn render_responses(responses: &[Response]) -> String {
    let mut out = String::new();
    for r in responses {
        let record = ResponseRecord::from(r);
        out.push_str(&serde_json::to_string(&record).expect("response records always serialize"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Verdict;
    use crate::{Service, ServiceConfig};
    use rmts_core::AlgorithmSpec;

    #[test]
    fn request_lines_round_trip_and_bad_lines_are_located() {
        let req = AnalyzeRequest::new(vec![(1, 4), (2, 8)], 2, AlgorithmSpec::RmTsLight);
        let line = serde_json::to_string(&req).unwrap();
        let input = format!("# comment\n\n{line}\n{line}\n");
        let parsed = parse_requests(&input).unwrap();
        assert_eq!(parsed, vec![req.clone(), req]);

        let err = parse_requests("# ok\nnot json\n").unwrap_err();
        assert!(err.starts_with("request line 2:"), "{err}");
    }

    #[test]
    fn responses_render_one_record_per_line_in_order() {
        let svc = Service::new(ServiceConfig::new().with_shards(2));
        let reqs = vec![
            AnalyzeRequest::new(vec![(1, 4), (2, 8)], 2, AlgorithmSpec::RmTsLight),
            AnalyzeRequest::new(vec![(1, 4), (2, 8)], 2, AlgorithmSpec::RmTsLight),
        ];
        let responses = svc.analyze_batch(reqs);
        let jsonl = render_responses(&responses);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let rec: ResponseRecord = serde_json::from_str(line).unwrap();
            assert_eq!(rec.index, i);
            assert!(matches!(rec.outcome.verdict, Verdict::Accepted { .. }));
        }
        // The duplicate's record differs only in metadata, not outcome.
        let a: ResponseRecord = serde_json::from_str(lines[0]).unwrap();
        let b: ResponseRecord = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.canonical_hash, b.canonical_hash);
    }
}
