//! Write-ahead session journal: crash durability for live sessions.
//!
//! Memo snapshots ([`crate::snapshot`]) make the *memo* durable, but only
//! at graceful shutdown; a crash still loses every live
//! [`PartitionSession`](rmts_core::PartitionSession). This module closes
//! that gap: every **committed** session mutation (`Open`, a non-noop
//! `Delta`, `Close`, and panic teardowns) is appended to an on-disk
//! journal *before* the response is sent. Because guided replay is
//! deterministic and bit-identical to from-scratch partitioning, replaying
//! the journal through the ordinary session machinery rebuilds every
//! acknowledged session exactly — state digests and all.
//!
//! ## File format (all integers little-endian)
//!
//! The framing discipline is identical to the memo snapshot (`RMTSMEM1`):
//!
//! ```text
//! header:
//!   magic        8  bytes   b"RMTSJRN1"
//!   fp_len       u32        length of the build fingerprint
//!   fingerprint  fp_len     engine build fingerprint (utf-8)
//! record (repeated until EOF):
//!   payload_len  u32        length of the payload that follows the checksum
//!   checksum     u64        FNV-1a over the payload bytes
//!   payload      payload_len  one JournalOp as JSON (utf-8)
//! ```
//!
//! ## Trust policy
//!
//! Same verified-prefix discipline as the snapshot: wrong magic or build
//! fingerprint → **stale**, the whole file is ignored (session state is
//! not portable across engine builds); a truncated record, failing
//! checksum, or unparsable payload → **corrupt**, replay stops at the last
//! good record and [`JournalReport::valid_bytes`] marks the boundary so
//! the writer can truncate the torn tail before appending again. A torn
//! record can lose at most the operations that were never acknowledged —
//! an acknowledged op was `write(2)`-complete before its response line
//! existed, so it survives any *process* crash (the bytes live in the
//! kernel page cache; machine-crash durability would add an fsync per
//! append, which this service deliberately does not pay).

use crate::request::AnalyzeRequest;
use crate::snapshot::{self, Cursor};
use rmts_taskmodel::TaskSetDelta;
use serde::{Deserialize, Serialize};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

/// Leading magic of a session journal file (the `1` is the format version).
pub const JOURNAL_MAGIC: &[u8; 8] = b"RMTSJRN1";

/// One committed session mutation, exactly as replay needs it. The `Open`
/// record keeps the **original** base request (not a re-expressed current
/// set): engines are built against the opening set's size (the SPA
/// thresholds are Θ(n)-dependent), so recovery must rebuild from the same
/// base and re-apply the same deltas to reach the same state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalOp {
    /// A session was opened (or replaced) by partitioning `base`.
    Open {
        /// The session name.
        session: String,
        /// The base analysis question the session was opened with.
        base: AnalyzeRequest,
    },
    /// A non-noop delta was committed against the session.
    Delta {
        /// The session name.
        session: String,
        /// The committed delta.
        delta: TaskSetDelta,
    },
    /// The session was closed — explicitly, or torn down after an engine
    /// panic (either way its state is gone and must not resurrect).
    Close {
        /// The session name.
        session: String,
    },
}

impl JournalOp {
    /// The session this operation addresses.
    pub fn session(&self) -> &str {
        match self {
            JournalOp::Open { session, .. }
            | JournalOp::Delta { session, .. }
            | JournalOp::Close { session } => session,
        }
    }
}

/// What reading a journal found. Mirrors
/// [`RestoreReport`](crate::snapshot::RestoreReport) for the memo
/// snapshot, plus the verified-prefix length the writer resumes at.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalReport {
    /// Operations in the verified prefix.
    pub records: usize,
    /// No journal file existed (first boot) — a clean cold start.
    pub missing: bool,
    /// The file's build fingerprint (or magic) did not match this engine:
    /// the whole journal was ignored.
    pub stale: bool,
    /// A truncated or checksum-failing record stopped the read early;
    /// operations before the damage were kept.
    pub corrupt: bool,
    /// Byte length of the verified prefix (header + intact records). The
    /// writer truncates to this before appending, so a torn tail can never
    /// corrupt later records.
    pub valid_bytes: usize,
}

/// Serializes the journal header for `fingerprint`.
pub fn header_bytes(fingerprint: &str) -> Vec<u8> {
    let mut buf = Vec::with_capacity(JOURNAL_MAGIC.len() + 4 + fingerprint.len());
    buf.extend_from_slice(JOURNAL_MAGIC);
    snapshot::put_u32(&mut buf, fingerprint.len() as u32);
    buf.extend_from_slice(fingerprint.as_bytes());
    buf
}

/// Serializes one operation as a framed record (length + checksum +
/// payload) ready to append.
pub fn encode_record(op: &JournalOp) -> io::Result<Vec<u8>> {
    let payload = serde_json::to_string(op).map_err(io::Error::other)?;
    let payload = payload.as_bytes();
    let mut buf = Vec::with_capacity(12 + payload.len());
    snapshot::put_u32(&mut buf, payload.len() as u32);
    snapshot::put_u64(&mut buf, snapshot::fnv1a_bytes(payload));
    buf.extend_from_slice(payload);
    Ok(buf)
}

/// Serializes a whole journal (header + records) to bytes.
pub fn journal_bytes(fingerprint: &str, ops: &[JournalOp]) -> io::Result<Vec<u8>> {
    let mut buf = header_bytes(fingerprint);
    for op in ops {
        buf.extend_from_slice(&encode_record(op)?);
    }
    Ok(buf)
}

/// Parses journal bytes, verifying the fingerprint and every record
/// checksum (trust policy in the module docs). Never fails — damage
/// degrades to a shorter verified prefix.
pub fn read_journal_bytes(data: &[u8], fingerprint: &str) -> (Vec<JournalOp>, JournalReport) {
    let mut report = JournalReport::default();
    let mut c = Cursor { data, at: 0 };
    let header_ok = (|| {
        let magic = c.take(JOURNAL_MAGIC.len())?;
        if magic != JOURNAL_MAGIC {
            return None;
        }
        let fp_len = c.u32()? as usize;
        let fp = std::str::from_utf8(c.take(fp_len)?).ok()?;
        (fp == fingerprint).then_some(())
    })();
    if header_ok.is_none() {
        report.stale = true;
        return (Vec::new(), report);
    }
    let mut ops = Vec::new();
    let mut verified = c.at;
    while !c.done() {
        let record = (|| {
            let payload_len = c.u32()? as usize;
            let checksum = c.u64()?;
            let payload = c.take(payload_len)?;
            if snapshot::fnv1a_bytes(payload) != checksum {
                return None;
            }
            let text = std::str::from_utf8(payload).ok()?;
            serde_json::from_str::<JournalOp>(text).ok()
        })();
        match record {
            Some(op) => {
                ops.push(op);
                verified = c.at;
            }
            None => {
                report.corrupt = true;
                break;
            }
        }
    }
    report.records = ops.len();
    report.valid_bytes = verified;
    (ops, report)
}

/// Reads a journal file (trust policy in the module docs).
pub fn read_journal(path: &Path, fingerprint: &str) -> (Vec<JournalOp>, JournalReport) {
    let mut data = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            if f.read_to_end(&mut data).is_err() {
                return (
                    Vec::new(),
                    JournalReport {
                        corrupt: true,
                        ..JournalReport::default()
                    },
                );
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return (
                Vec::new(),
                JournalReport {
                    missing: true,
                    ..JournalReport::default()
                },
            );
        }
        Err(_) => {
            return (
                Vec::new(),
                JournalReport {
                    corrupt: true,
                    ..JournalReport::default()
                },
            );
        }
    }
    read_journal_bytes(&data, fingerprint)
}

/// Writes a complete journal atomically (temp file + fsync + rename) —
/// the checkpoint compaction path. A crash mid-write leaves the previous
/// generation intact.
pub fn write_journal(path: &Path, fingerprint: &str, ops: &[JournalOp]) -> io::Result<usize> {
    let buf = journal_bytes(fingerprint, ops)?;
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let mut file = File::create(&tmp)?;
    file.write_all(&buf)?;
    file.sync_all()?;
    drop(file);
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(buf.len()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// An append handle over an open journal file. Appends are plain
/// `write_all` calls — durable against process death (SIGKILL) the moment
/// they return, without a per-record fsync (see the module docs).
pub struct JournalWriter {
    file: File,
    bytes: u64,
}

impl JournalWriter {
    /// Creates (or truncates to) a fresh journal containing only the
    /// header.
    pub fn create(path: &Path, fingerprint: &str) -> io::Result<Self> {
        let mut file = File::create(path)?;
        let header = header_bytes(fingerprint);
        file.write_all(&header)?;
        file.sync_all()?;
        Ok(JournalWriter {
            file,
            bytes: header.len() as u64,
        })
    }

    /// Opens `path` for appending, first reading back its verified prefix.
    /// A missing or stale file is replaced by a fresh header; a corrupt
    /// tail is truncated away (so later appends can never be shadowed by
    /// torn bytes). Returns the writer plus the verified operations and
    /// the read report — exactly what recovery replays.
    pub fn resume(
        path: &Path,
        fingerprint: &str,
    ) -> io::Result<(Self, Vec<JournalOp>, JournalReport)> {
        let (ops, report) = read_journal(path, fingerprint);
        if report.missing || report.stale {
            let writer = Self::create(path, fingerprint)?;
            return Ok((writer, Vec::new(), report));
        }
        let file = OpenOptions::new().append(true).open(path)?;
        if report.corrupt {
            file.set_len(report.valid_bytes as u64)?;
            file.sync_all()?;
        }
        let writer = JournalWriter {
            file,
            bytes: report.valid_bytes as u64,
        };
        Ok((writer, ops, report))
    }

    /// Opens an existing, just-written journal for appending at its end
    /// (the post-checkpoint writer swap; the file was written atomically
    /// a moment ago, so no verification pass is needed).
    pub fn open_end(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().append(true).open(path)?;
        let bytes = file.metadata()?.len();
        Ok(JournalWriter { file, bytes })
    }

    /// Appends one operation. Returns the record's size in bytes.
    pub fn append(&mut self, op: &JournalOp) -> io::Result<usize> {
        let record = encode_record(op)?;
        self.file.write_all(&record)?;
        self.bytes += record.len() as u64;
        Ok(record.len())
    }

    /// Total bytes in the journal (header + appended records).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Flushes file contents to stable storage (checkpoint boundary).
    pub fn sync(&self) -> io::Result<()> {
        self.file.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::engine_fingerprint;
    use rmts_core::AlgorithmSpec;
    use rmts_taskmodel::{Task, TaskId};

    fn demo_ops() -> Vec<JournalOp> {
        vec![
            JournalOp::Open {
                session: "a".into(),
                base: AnalyzeRequest::new(vec![(1, 4), (2, 8)], 2, AlgorithmSpec::RmTsLight),
            },
            JournalOp::Delta {
                session: "a".into(),
                delta: TaskSetDelta::update(Task::from_ticks(0, 2, 4).unwrap()),
            },
            JournalOp::Delta {
                session: "a".into(),
                delta: TaskSetDelta::remove(TaskId(1)),
            },
            JournalOp::Close {
                session: "a".into(),
            },
        ]
    }

    #[test]
    fn round_trips_ops_bit_identically() {
        let fp = engine_fingerprint();
        let ops = demo_ops();
        let bytes = journal_bytes(&fp, &ops).unwrap();
        let (read, report) = read_journal_bytes(&bytes, &fp);
        assert_eq!(read, ops);
        assert_eq!(report.records, ops.len());
        assert!(!report.corrupt && !report.stale && !report.missing);
        assert_eq!(report.valid_bytes, bytes.len());
    }

    #[test]
    fn foreign_fingerprint_is_stale() {
        let bytes = journal_bytes("rmts-engine/9.9.9/memo-fmt1", &demo_ops()).unwrap();
        let (read, report) = read_journal_bytes(&bytes, &engine_fingerprint());
        assert!(read.is_empty());
        assert!(report.stale);
    }

    #[test]
    fn writer_resume_round_trip_and_truncates_torn_tail() {
        let fp = engine_fingerprint();
        let dir = std::env::temp_dir().join(format!("rmts_jrn_rt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.g0.log");
        let ops = demo_ops();
        {
            let mut w = JournalWriter::create(&path, &fp).unwrap();
            for op in &ops {
                w.append(op).unwrap();
            }
        }
        // Tear the tail: append garbage that parses as no valid record.
        let clean_len = std::fs::metadata(&path).unwrap().len();
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xAB; 7]).unwrap();
        }
        let (mut w, read, report) = JournalWriter::resume(&path, &fp).unwrap();
        assert_eq!(read, ops);
        assert!(report.corrupt);
        assert_eq!(report.valid_bytes as u64, clean_len);
        // The torn bytes are gone; a fresh append reads back clean.
        w.append(&JournalOp::Close {
            session: "b".into(),
        })
        .unwrap();
        drop(w);
        let (read2, report2) = read_journal(&path, &fp);
        assert_eq!(read2.len(), ops.len() + 1);
        assert!(!report2.corrupt);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_clean_cold_start() {
        let (ops, report) = read_journal(Path::new("/nonexistent/rmts/journal.log"), "fp");
        assert!(ops.is_empty());
        assert!(report.missing && !report.corrupt && !report.stale);
    }
}
