//! The service façade: shard fleet, submission, batching, statistics.

use crate::canonical::{fnv1a as canonical_hash, CanonicalBatch, CanonicalSet};
use crate::durability::{
    self, CheckpointReport, DurabilityConfig, DurabilityState, DurabilityStats, RecoveryReport,
    SchedulerHandle,
};
use crate::journal::{JournalOp, JournalWriter};
use crate::queue::BoundedQueue;
use crate::request::{AnalyzeRequest, RepartitionRequest, Request, Response, Verdict};
use crate::shard::{AnalyzeJob, CanonJob, Job, SessionJob, SessionState, Shard};
use crate::snapshot::{self, MemoEntry, RestoreReport, SnapshotReport};
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Sizing knobs for a [`Service`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Number of worker shards (min 1). Duplicate task sets always land on
    /// the same shard, so memo hit rates do not degrade with more shards.
    pub shards: usize,
    /// Per-shard bounded queue capacity (min 1): the backpressure limit.
    /// Each shard holds at most `queue_capacity` queued requests plus one
    /// drained run being analyzed; further submissions block.
    pub queue_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 4,
            queue_capacity: 64,
        }
    }
}

impl ServiceConfig {
    /// Default sizing. Chain [`Self::with_shards`] /
    /// [`Self::with_queue_capacity`] — the uniform-builder idiom.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the shard count (min 1).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the per-shard queue capacity (min 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }
}

/// Cross-thread counters shared by the shards (plain atomics: the `obs`
/// recorders are thread-local, so worker threads cannot see the caller's
/// recording — the caller mirrors these into `obs` instead, see
/// [`Service::analyze_batch`]).
pub(crate) struct SharedStats {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub memo_hits: AtomicU64,
    pub memo_misses: AtomicU64,
    pub panics: AtomicU64,
    pub busy_ns: Vec<AtomicU64>,
}

/// A point-in-time statistics snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests accepted by `submit`/`analyze_batch`.
    pub submitted: u64,
    /// Requests answered.
    pub completed: u64,
    /// Answers served from the memo table.
    pub memo_hits: u64,
    /// Answers computed fresh.
    pub memo_misses: u64,
    /// Requests whose engine panicked (isolated; answered as `Invalid`).
    pub panics: u64,
    /// Queue high-water mark across shards.
    pub max_queue_depth: usize,
    /// Submissions that had to block on a saturated shard queue.
    pub backpressure_waits: u64,
    /// Per-shard busy time in nanoseconds.
    pub shard_busy_ns: Vec<u64>,
}

/// FNV-1a over raw bytes — the session-name routing hash (the canonical
/// task-set hash in `canonical.rs` uses the same function over pairs).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A pending single-request submission; redeem with [`Ticket::wait`].
pub struct Ticket {
    rx: mpsc::Receiver<Response>,
}

impl Ticket {
    /// Blocks until the response arrives.
    pub fn wait(self) -> Response {
        self.rx
            .recv()
            .expect("shard dropped a job without replying (worker died?)")
    }
}

/// The sharded, batched analysis service (crate docs for the model).
pub struct Service {
    queues: Vec<Arc<BoundedQueue<Job>>>,
    /// Behind a mutex so [`Service::shutdown`] can join from `&self`
    /// (network front ends hold the service in an `Arc`).
    workers: Mutex<Vec<JoinHandle<()>>>,
    stats: Arc<SharedStats>,
    seq: AtomicUsize,
    /// Crash-durability state ([`Service::with_durability`] only).
    durability: Option<Arc<DurabilityState>>,
    /// The background snapshot scheduler (durable services only); behind a
    /// mutex so shutdown can stop it from `&self`.
    scheduler: Mutex<Option<SchedulerHandle>>,
}

impl Service {
    /// Spawns the shard fleet with cold memo tables.
    pub fn new(cfg: ServiceConfig) -> Self {
        Self::new_seeded(cfg, Vec::new())
    }

    /// Spawns the shard fleet warm: restores the memo snapshot at `path`
    /// (if any) and seeds each shard with the entries that route to it.
    /// A missing, stale, or corrupt snapshot degrades to a (partially)
    /// cold start — see [`crate::snapshot`] for the trust
    /// policy — with `svc.memo.restored` / `svc.memo.stale` /
    /// `svc.memo.corrupt` counters emitted when an `obs` recording is
    /// live on the calling thread.
    pub fn with_restored(cfg: ServiceConfig, path: &Path) -> (Self, RestoreReport) {
        let (entries, report) = snapshot::read_snapshot(path);
        rmts_obs::count("svc.memo.restored", report.restored as u64);
        if report.stale {
            rmts_obs::count("svc.memo.stale", 1);
        }
        if report.corrupt {
            rmts_obs::count("svc.memo.corrupt", 1);
        }
        (Self::new_seeded(cfg, entries), report)
    }

    /// Spawns a **crash-durable** fleet rooted at `cfg.dir` (created if
    /// absent): recovers the newest valid memo snapshot and session
    /// journal (see [`crate::durability`] for the generation layout and
    /// [`crate::journal`] for the trust policy), replays every journaled
    /// session op through the ordinary session machinery — guided replay
    /// is deterministic, so recovered sessions are bit-identical to their
    /// pre-crash state — and starts the background snapshot scheduler.
    /// Every committed session op is thereafter journaled write-ahead.
    pub fn with_durability(
        cfg: ServiceConfig,
        dcfg: DurabilityConfig,
    ) -> std::io::Result<(Self, RecoveryReport)> {
        std::fs::create_dir_all(&dcfg.dir)?;
        let fp = snapshot::engine_fingerprint();
        let (memo_gen, journal_gen) = durability::newest_generations(&dcfg.dir);
        let mut report = RecoveryReport::default();
        let entries = match memo_gen {
            Some(g) => {
                let (entries, memo_report) =
                    snapshot::read_snapshot(&durability::memo_path(&dcfg.dir, g));
                report.memo = memo_report;
                entries
            }
            None => {
                report.memo.missing = true;
                Vec::new()
            }
        };
        // Sessions come from the newest journal *file*; the generation
        // counter continues from the newest file of either kind, so the
        // next checkpoint never collides with a crash straggler (a memo
        // snapshot written just before the crash cut off its journal).
        let journal_file_gen = journal_gen.unwrap_or(0);
        let (writer, ops, journal_report) =
            JournalWriter::resume(&durability::journal_path(&dcfg.dir, journal_file_gen), &fp)?;
        report.journal = journal_report;
        report.generation = memo_gen.unwrap_or(0).max(journal_file_gen);
        let dur = Arc::new(DurabilityState::new(
            dcfg.dir.clone(),
            writer,
            report.generation,
        ));
        let svc = Self::new_seeded_durable(cfg, entries, Some(Arc::clone(&dur)));
        rmts_obs::count("svc.memo.restored", report.memo.restored as u64);
        if report.memo.stale {
            rmts_obs::count("svc.memo.stale", 1);
        }
        if report.memo.corrupt {
            rmts_obs::count("svc.memo.corrupt", 1);
        }
        let (replayed, recovered, failed) = svc.replay_journal(&ops);
        report.ops_replayed = replayed;
        report.sessions_recovered = recovered;
        report.sessions_failed = failed;
        rmts_obs::count("svc.journal.replayed", replayed as u64);
        if report.journal.stale {
            rmts_obs::count("svc.journal.stale", 1);
        }
        if report.journal.corrupt {
            rmts_obs::count("svc.journal.corrupt", 1);
        }
        // The scheduler starts only after replay: recovery is complete
        // before the first background checkpoint can cut a generation.
        *svc.scheduler.lock().expect("scheduler registry poisoned") = Some(SchedulerHandle::spawn(
            svc.queues.clone(),
            Arc::clone(&dur),
            dcfg.snapshot_interval,
            dcfg.snapshot_every_mutations,
        ));
        Ok((svc, report))
    }

    /// Replays journal ops through the session machinery (un-journaled —
    /// they are already in the journal being replayed). Returns
    /// `(ops replayed, sessions recovered, sessions failed)`; a failed
    /// session — one whose journaled commit did not replay cleanly — is
    /// torn down rather than left half-applied. Replay is deterministic,
    /// so failures never happen outside hand-corrupted journals.
    fn replay_journal(&self, ops: &[JournalOp]) -> (usize, usize, usize) {
        if ops.is_empty() {
            return (0, 0, 0);
        }
        let (tx, rx) = mpsc::channel();
        for (i, op) in ops.iter().enumerate() {
            let req = match op {
                JournalOp::Open { session, base } => {
                    RepartitionRequest::open(session.clone(), base.clone())
                }
                JournalOp::Delta { session, delta } => {
                    RepartitionRequest::delta(session.clone(), delta.clone())
                }
                JournalOp::Close { session } => RepartitionRequest::close(session.clone()),
            };
            self.enqueue_session(i, req, tx.clone(), false);
        }
        drop(tx);
        let mut responses: Vec<Option<Response>> = (0..ops.len()).map(|_| None).collect();
        for resp in rx {
            let slot = resp.index;
            responses[slot] = Some(resp);
        }
        let mut alive: HashMap<&str, bool> = HashMap::new();
        let mut failed: HashSet<&str> = HashSet::new();
        for (op, resp) in ops.iter().zip(&responses) {
            let resp = resp.as_ref().expect("every replayed op gets one response");
            let ok = match op {
                JournalOp::Open { .. } | JournalOp::Delta { .. } => {
                    matches!(resp.outcome.verdict, Verdict::Accepted { .. })
                }
                JournalOp::Close { .. } => true,
            };
            match op {
                JournalOp::Open { session, .. } => {
                    alive.insert(session.as_str(), true);
                }
                JournalOp::Delta { .. } => {}
                JournalOp::Close { session } => {
                    alive.insert(session.as_str(), false);
                }
            }
            if !ok {
                failed.insert(op.session());
            }
        }
        let teardown: Vec<String> = failed
            .iter()
            .filter(|name| alive.get(**name).copied().unwrap_or(false))
            .map(|name| name.to_string())
            .collect();
        let (tx, rx) = mpsc::channel();
        for (i, name) in teardown.iter().enumerate() {
            self.enqueue_session(
                i,
                RepartitionRequest::close(name.clone()),
                tx.clone(),
                false,
            );
        }
        drop(tx);
        for _ in rx {}
        let recovered = alive
            .iter()
            .filter(|(name, live)| **live && !failed.contains(*name))
            .count();
        (ops.len(), recovered, failed.len())
    }

    fn new_seeded(cfg: ServiceConfig, entries: Vec<MemoEntry>) -> Self {
        Self::new_seeded_durable(cfg, entries, None)
    }

    fn new_seeded_durable(
        cfg: ServiceConfig,
        entries: Vec<MemoEntry>,
        durability: Option<Arc<DurabilityState>>,
    ) -> Self {
        let shards = cfg.shards.max(1);
        // Route each restored entry exactly like a live request: by the
        // FNV-1a hash of its canonical pairs. A future request for the
        // same set lands on the shard that now holds its memo entry.
        let mut seeds: Vec<Vec<MemoEntry>> = (0..shards).map(|_| Vec::new()).collect();
        for entry in entries {
            let shard = (canonical_hash(&entry.pairs) % shards as u64) as usize;
            seeds[shard].push(entry);
        }
        let stats = Arc::new(SharedStats {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            memo_misses: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            busy_ns: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        });
        let queues: Vec<Arc<BoundedQueue<Job>>> = (0..shards)
            .map(|_| Arc::new(BoundedQueue::new(cfg.queue_capacity)))
            .collect();
        let workers = queues
            .iter()
            .zip(seeds)
            .enumerate()
            .map(|(idx, (q, seed))| {
                let q = Arc::clone(q);
                let stats = Arc::clone(&stats);
                let dur = durability.clone();
                std::thread::Builder::new()
                    .name(format!("rmts-svc-shard-{idx}"))
                    .spawn(move || Shard::run(idx, q, stats, seed, dur))
                    .expect("spawn shard worker")
            })
            .collect();
        Service {
            queues,
            workers: Mutex::new(workers),
            stats,
            seq: AtomicUsize::new(0),
            durability,
            scheduler: Mutex::new(None),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// Submits one request; blocks only if the target shard's queue is
    /// full (backpressure). The returned [`Ticket`] resolves to the
    /// response; its `index` is the service-wide submission sequence
    /// number.
    pub fn submit(&self, req: AnalyzeRequest) -> Ticket {
        let index = self.seq.fetch_add(1, Ordering::Relaxed);
        self.submit_indexed(index, req)
    }

    /// [`Service::submit`] with a caller-chosen response index — network
    /// front ends use per-connection ordinals so a connection's response
    /// stream is indexed exactly like a `serve-batch` JSONL stream.
    pub fn submit_indexed(&self, index: usize, req: AnalyzeRequest) -> Ticket {
        let (tx, rx) = mpsc::channel();
        let canon = CanonJob::Owned(CanonicalSet::of_pairs(&req.taskset));
        self.enqueue(index, req, canon, tx);
        Ticket { rx }
    }

    /// Submits one session operation (v2). Ops for the same session name
    /// always land on the same shard and are served in submission order.
    pub fn submit_repartition(&self, req: RepartitionRequest) -> Ticket {
        let index = self.seq.fetch_add(1, Ordering::Relaxed);
        self.submit_repartition_indexed(index, req)
    }

    /// [`Service::submit_repartition`] with a caller-chosen response
    /// index (see [`Service::submit_indexed`]).
    pub fn submit_repartition_indexed(&self, index: usize, req: RepartitionRequest) -> Ticket {
        let (tx, rx) = mpsc::channel();
        self.enqueue_session(index, req, tx, true);
        Ticket { rx }
    }

    /// Runs a mixed v1/v2 request stream, returning responses in request
    /// order. Same-session ops serialize through one shard FIFO, so a
    /// JSONL session script behaves exactly like sequential submission;
    /// unrelated requests still fan out across the fleet.
    pub fn run_stream(&self, reqs: Vec<Request>) -> Vec<Response> {
        let n = reqs.len();
        let (tx, rx) = mpsc::channel();
        for (i, req) in reqs.into_iter().enumerate() {
            match req {
                Request::Analyze(req) => {
                    let canon = CanonJob::Owned(CanonicalSet::of_pairs(&req.taskset));
                    self.enqueue(i, req, canon, tx.clone());
                }
                Request::Repartition(req) => self.enqueue_session(i, req, tx.clone(), true),
            }
        }
        drop(tx);
        let mut out: Vec<Option<Response>> = (0..n).map(|_| None).collect();
        for resp in rx {
            let slot = resp.index;
            out[slot] = Some(resp);
        }
        out.into_iter()
            .map(|r| r.expect("every submitted request gets exactly one response"))
            .collect()
    }

    /// Analyzes a whole batch, returning responses in request order.
    /// Memory stays flat regardless of batch size: at most
    /// `shards × queue_capacity` requests are in flight (submission blocks
    /// on saturated shards), and each response is collected as it lands.
    ///
    /// When an `obs` recording is active on the calling thread, the batch
    /// emits `svc.*` counters/histograms (requests, memo hits/misses,
    /// queue high-water mark, per-shard busy time, wall latency).
    pub fn analyze_batch(&self, reqs: Vec<AnalyzeRequest>) -> Vec<Response> {
        let t0 = Instant::now();
        let before = self.stats_inner();
        let n = reqs.len();
        let (tx, rx) = mpsc::channel();
        // Canonicalize the whole batch into one structure-of-arrays arena
        // up front: one shared allocation the shards read slices of,
        // instead of three `Vec`s per request (see `CanonicalBatch`).
        let mut batch = CanonicalBatch::with_capacity(n);
        for req in &reqs {
            batch.push(&req.taskset);
        }
        let batch = Arc::new(batch);
        // Submit-then-collect cannot deadlock: shards reply through this
        // unbounded mpsc channel and never block sending, so saturated
        // request queues always drain even while we are still submitting.
        for (i, req) in reqs.into_iter().enumerate() {
            let canon = CanonJob::Shared {
                batch: Arc::clone(&batch),
                idx: i,
            };
            self.enqueue(i, req, canon, tx.clone());
        }
        drop(tx);
        let mut out: Vec<Option<Response>> = (0..n).map(|_| None).collect();
        for resp in rx {
            let slot = resp.index;
            out[slot] = Some(resp);
        }
        let responses: Vec<Response> = out
            .into_iter()
            .map(|r| r.expect("every submitted request gets exactly one response"))
            .collect();
        if rmts_obs::enabled() {
            let after = self.stats_inner();
            rmts_obs::count("svc.batch.requests", n as u64);
            rmts_obs::count("svc.memo.hits", after.memo_hits - before.memo_hits);
            rmts_obs::count("svc.memo.misses", after.memo_misses - before.memo_misses);
            rmts_obs::count("svc.panics", after.panics - before.panics);
            rmts_obs::count(
                "svc.queue.backpressure_waits",
                after.backpressure_waits - before.backpressure_waits,
            );
            rmts_obs::observe("svc.queue.max_depth", after.max_queue_depth as u64);
            rmts_obs::observe("svc.batch.latency_us", t0.elapsed().as_micros() as u64);
            for (a, b) in after.shard_busy_ns.iter().zip(before.shard_busy_ns.iter()) {
                rmts_obs::observe("svc.shard.busy_us", (a - b) / 1_000);
            }
        }
        responses
    }

    fn enqueue(
        &self,
        index: usize,
        req: AnalyzeRequest,
        canon: CanonJob,
        reply: mpsc::Sender<Response>,
    ) {
        // Route by canonical hash: all duplicates of a task set share a
        // shard, so the second duplicate always finds the first's memo
        // entry (or queues behind the job that will create it).
        let shard = (canon.hash() % self.queues.len() as u64) as usize;
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        self.queues[shard]
            .push(Job::Analyze(AnalyzeJob {
                index,
                canon,
                req,
                reply,
            }))
            .expect("submission after Service::shutdown (queues are closed)");
    }

    fn enqueue_session(
        &self,
        index: usize,
        req: RepartitionRequest,
        reply: mpsc::Sender<Response>,
        record: bool,
    ) {
        // Route by session name: the session's state lives on exactly one
        // shard, and that shard's FIFO serializes its ops.
        let hash = fnv1a(req.session.as_bytes());
        let shard = (hash % self.queues.len() as u64) as usize;
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        self.queues[shard]
            .push(Job::Session(SessionJob {
                index,
                hash,
                req,
                reply,
                record,
            }))
            .expect("submission after Service::shutdown (queues are closed)");
    }

    fn stats_inner(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.stats.submitted.load(Ordering::Relaxed),
            completed: self.stats.completed.load(Ordering::Relaxed),
            memo_hits: self.stats.memo_hits.load(Ordering::Relaxed),
            memo_misses: self.stats.memo_misses.load(Ordering::Relaxed),
            panics: self.stats.panics.load(Ordering::Relaxed),
            max_queue_depth: self.queues.iter().map(|q| q.max_depth()).max().unwrap_or(0),
            backpressure_waits: self.queues.iter().map(|q| q.push_waits()).sum(),
            shard_busy_ns: self
                .stats
                .busy_ns
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// A statistics snapshot.
    pub fn stats(&self) -> ServiceStats {
        self.stats_inner()
    }

    /// Durability counters (`None` for non-durable services).
    pub fn durability_stats(&self) -> Option<DurabilityStats> {
        self.durability.as_ref().map(|d| d.stats())
    }

    /// Runs one checkpoint **now** (durable services only): a
    /// stop-the-world consistent cut of the whole fleet, written as a new
    /// generation (memo snapshot + compacted journal), after which the
    /// prior generation is deleted. Serialized against the background
    /// scheduler and shutdown by the snapshot-generation lock. Returns
    /// `Ok(None)` on a non-durable service or when shutdown won the race.
    pub fn checkpoint(&self) -> std::io::Result<Option<CheckpointReport>> {
        match &self.durability {
            Some(dur) => durability::run_checkpoint(&self.queues, dur),
            None => Ok(None),
        }
    }

    /// Stops (and joins) the background snapshot scheduler, if any.
    fn stop_scheduler(&self) {
        let handle = self
            .scheduler
            .lock()
            .expect("scheduler registry poisoned")
            .take();
        if let Some(mut handle) = handle {
            handle.stop();
        }
    }

    /// Graceful shutdown: drains every in-flight and queued request,
    /// stops the shard fleet, and returns the final statistics.
    ///
    /// The drain is a **barrier**, not a best-effort flush: an export job
    /// is enqueued behind every previously accepted request on each
    /// shard's FIFO, so by the time it answers, every accepted request
    /// has been served (its response delivered, its outcome memoized).
    /// Submissions racing past shutdown are refused by the closed queues,
    /// never half-served. Idempotent — a second call is a no-op.
    ///
    /// On a durable service the scheduler is stopped first and a final
    /// generation is written under the snapshot-generation lock, so a
    /// background checkpoint can never race the shutdown files.
    pub fn shutdown(&self) -> ServiceStats {
        self.stop_scheduler();
        match self.durability.clone() {
            Some(dur) => {
                let _guard = dur
                    .checkpoint_lock
                    .lock()
                    .expect("checkpoint lock poisoned");
                if let Some((memo, sessions)) = self.drain_and_join() {
                    let generation = dur.generation.load(Ordering::Relaxed) + 1;
                    // Best-effort: failure leaves the previous generation
                    // (plus the live journal) intact — recovery replays it.
                    let _ = durability::write_generation(&dur, generation, &memo, &sessions);
                }
            }
            None => {
                let _ = self.drain_and_join();
            }
        }
        self.stats_inner()
    }

    /// [`Service::shutdown`], then writes the drained memo tables to
    /// `path` atomically (temp file + rename). Every request accepted
    /// before the call is analyzed, answered, and — via the FIFO drain
    /// barrier — present in the written snapshot. On a durable service a
    /// final generation is also written, under the same
    /// snapshot-generation lock the background scheduler takes, so the
    /// two writers are serialized — never interleaved on the same paths.
    /// A second call is a no-op that leaves the first snapshot in place.
    pub fn shutdown_with_snapshot(&self, path: &Path) -> std::io::Result<SnapshotReport> {
        self.stop_scheduler();
        let dur = self.durability.clone();
        let _guard = dur
            .as_ref()
            .map(|d| d.checkpoint_lock.lock().expect("checkpoint lock poisoned"));
        match self.drain_and_join() {
            Some((memo, sessions)) => {
                if let Some(dur) = &dur {
                    let generation = dur.generation.load(Ordering::Relaxed) + 1;
                    durability::write_generation(dur, generation, &memo, &sessions)?;
                }
                snapshot::write_snapshot(path, &memo)
            }
            // Already drained by an earlier shutdown: do not overwrite the
            // snapshot it wrote with an empty one.
            None => Ok(SnapshotReport {
                entries: 0,
                bytes: 0,
            }),
        }
    }

    /// The shared drain machinery: barrier-export every shard's memo and
    /// sessions, close the queues, join the workers. Returns the merged
    /// state, or `None` when the fleet was already drained (second
    /// shutdown, post-Drop).
    fn drain_and_join(&self) -> Option<(Vec<MemoEntry>, Vec<SessionState>)> {
        let mut exports = Vec::with_capacity(self.queues.len());
        for q in &self.queues {
            let (tx, rx) = mpsc::channel();
            // An already-closed queue (second shutdown, post-Drop) simply
            // yields no export for that shard.
            if q.push(Job::Export(tx)).is_ok() {
                exports.push(rx);
            }
        }
        for q in &self.queues {
            q.close();
        }
        let drained = !exports.is_empty();
        let mut memo: Vec<MemoEntry> = Vec::new();
        let mut sessions: Vec<SessionState> = Vec::new();
        for rx in exports {
            if let Ok(export) = rx.recv() {
                memo.extend(export.memo);
                sessions.extend(export.sessions);
            }
        }
        // Shard-merge order must not depend on shard count: keep the
        // per-shard sorted runs globally sorted.
        memo.sort_by(|a, b| (&a.pairs, a.m, &a.engine).cmp(&(&b.pairs, b.m, &b.engine)));
        sessions.sort_by(|a, b| a.name.cmp(&b.name));
        let workers: Vec<JoinHandle<()>> = {
            let mut guard = self.workers.lock().expect("worker registry poisoned");
            guard.drain(..).collect()
        };
        for w in workers {
            if w.join().is_err() && !std::thread::panicking() {
                panic!("rmts-svc shard worker panicked");
            }
        }
        drained.then_some((memo, sessions))
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Stop the snapshot scheduler before closing the queues so an
        // in-flight checkpoint completes against a live fleet.
        self.stop_scheduler();
        for q in &self.queues {
            q.close();
        }
        let workers: Vec<JoinHandle<()>> = {
            let mut guard = self.workers.lock().expect("worker registry poisoned");
            guard.drain(..).collect()
        };
        for w in workers {
            // A shard that panicked outside catch_unwind is a bug; don't
            // double-panic while unwinding, though.
            if w.join().is_err() && !std::thread::panicking() {
                panic!("rmts-svc shard worker panicked");
            }
        }
    }
}
