//! # `rmts-svc` — sharded, batched schedulability analysis
//!
//! A long-lived analysis **service** over the unified
//! [`Partitioner`](rmts_core::Partitioner) API: callers submit
//! [`AnalyzeRequest`]s (task set + processor count + [`AlgorithmSpec`] +
//! budget) and receive [`AnalysisOutcome`]s, instead of constructing
//! engines by hand per call. The service owns `N` worker shards; each shard
//! holds long-lived engines per algorithm configuration and a memo table of
//! results for task sets it has already analyzed.
//!
//! The pipeline for one request:
//!
//! 1. **Canonicalize** ([`CanonicalSet`]): tasks are sorted by
//!    `(period, wcet)`, relabeled `0..n`, and all times divided by their
//!    collective gcd. Integer response-time analysis is exactly invariant
//!    under both transformations (`⌈k·x / k·T⌉ = ⌈x/T⌉`), so the canonical
//!    form answers the original schedulability question — and syntactically
//!    different duplicates of the same set become byte-identical.
//! 2. **Route**: the canonical form's FNV-1a hash picks the shard, so every
//!    duplicate of a task set lands on the shard that already holds its
//!    memoized result. Submission applies **backpressure**: each shard's
//!    queue is bounded, and `submit` blocks (never drops, never buffers
//!    unboundedly) while the shard is saturated.
//! 3. **Analyze**: the shard looks up `(canonical pairs, m, engine
//!    fingerprint)` in its memo table. On a miss it runs the engine —
//!    panic-isolated, so a poisoned request yields an
//!    [`Verdict::Invalid`] response instead of killing the shard — and
//!    memoizes the outcome. On a hit it returns the stored outcome, which
//!    is **bit-identical** to what a fresh analysis would produce whenever
//!    the request's budget is deterministic (iteration/probe caps; a
//!    wall-clock deadline is inherently racy, so a memo hit then simply
//!    replays the first run's sound verdict).
//!
//! Because both the memo-hit and the fresh path analyze the *canonical*
//! form, memo-hit ≡ fresh reduces to determinism of the engines, which the
//! conformance suite pins down. Task ids appearing in verdicts refer to
//! canonical indices (position after the `(period, wcet)` sort);
//! [`CanonicalSet::permutation`] maps them back to the caller's ids.
//!
//! ```
//! use rmts_core::AlgorithmSpec;
//! use rmts_svc::{AnalyzeRequest, Service, ServiceConfig, Verdict};
//!
//! let svc = Service::new(ServiceConfig::default());
//! let reqs: Vec<AnalyzeRequest> = (0..64)
//!     .map(|_| {
//!         AnalyzeRequest::new(
//!             vec![(1, 4), (2, 8), (2, 8), (4, 16)],
//!             2,
//!             AlgorithmSpec::RmTsLight,
//!         )
//!     })
//!     .collect();
//! let responses = svc.analyze_batch(reqs);
//! assert!(responses
//!     .iter()
//!     .all(|r| matches!(r.outcome.verdict, Verdict::Accepted { .. })));
//! // 64 identical requests → 1 analysis, 63 memo hits.
//! assert_eq!(svc.stats().memo_misses, 1);
//! assert_eq!(svc.stats().memo_hits, 63);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canonical;
pub mod durability;
pub mod journal;
pub mod queue;
pub mod request;
pub mod service;
mod shard;
pub mod snapshot;
pub mod wire;

pub use canonical::{CanonicalBatch, CanonicalSet};
pub use durability::{CheckpointReport, DurabilityConfig, DurabilityStats, RecoveryReport};
pub use journal::{read_journal, write_journal, JournalOp, JournalReport};
pub use queue::BoundedQueue;
pub use request::{
    AnalysisOutcome, AnalyzeRequest, BudgetSpec, RepartitionRequest, Request, Response,
    SessionMeta, SessionOp, Verdict, WIRE_V1, WIRE_V2,
};
pub use rmts_core::{AlgorithmSpec, BoundSpec};
pub use service::{Service, ServiceConfig, ServiceStats, Ticket};
pub use snapshot::{
    engine_fingerprint, read_snapshot, write_snapshot, MemoEntry, RestoreReport, SnapshotReport,
};
pub use wire::{
    parse_line, parse_requests, parse_stream, render_responses, render_stream_responses,
    ResponseRecord, SessionRecord,
};
