//! Task-set canonicalization: the service's deduplication key.
//!
//! Two requests should share one analysis iff they ask the same
//! mathematical question. RM schedulability (for implicit-deadline RM
//! priorities, which the whole workspace assumes) is invariant under
//!
//! * **relabeling** — task ids never influence admission, only the
//!   `(period, id)` priority order, which a deterministic sort freezes; and
//! * **uniform time scaling** — all analyses are integer arithmetic over
//!   wcets/periods, and `⌈(k·a)/(k·b)⌉ = ⌈a/b⌉` for every `k ≥ 1`, so
//!   dividing every time by the collective gcd changes no verdict.
//!
//! [`CanonicalSet::of`] applies both: sort by `(period, wcet)`, relabel
//! `0..n`, divide by the gcd. The canonical pair list is the *exact* memo
//! key — the FNV-1a hash is used only for shard routing, so a hash
//! collision can never conflate two different task sets.

use rmts_taskmodel::time::gcd;
use rmts_taskmodel::{ModelError, TaskSet};

/// A task set in canonical form: `(wcet, period)` pairs sorted by
/// `(period, wcet)`, times divided by their collective gcd.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalSet {
    pairs: Vec<(u64, u64)>,
    perm: Vec<usize>,
    scale: u64,
    hash: u64,
}

impl CanonicalSet {
    /// Canonicalizes a task set (see the module docs for why this is
    /// verdict-preserving).
    pub fn of(ts: &TaskSet) -> Self {
        let tasks = ts.tasks();
        let mut order: Vec<usize> = (0..tasks.len()).collect();
        order.sort_by_key(|&i| (tasks[i].period.ticks(), tasks[i].wcet.ticks(), i));
        let scale = tasks
            .iter()
            .fold(0, |g, t| gcd(gcd(g, t.wcet.ticks()), t.period.ticks()))
            .max(1);
        let pairs: Vec<(u64, u64)> = order
            .iter()
            .map(|&i| {
                (
                    tasks[i].wcet.ticks() / scale,
                    tasks[i].period.ticks() / scale,
                )
            })
            .collect();
        let hash = fnv1a(&pairs);
        CanonicalSet {
            pairs,
            perm: order,
            scale,
            hash,
        }
    }

    /// Canonicalizes a raw `(wcet, period)` pair list (the request wire
    /// format) without requiring it to be a valid task set yet — validation
    /// happens in [`CanonicalSet::to_taskset`], on the analyzing shard.
    pub fn of_pairs(raw: &[(u64, u64)]) -> Self {
        let mut order: Vec<usize> = (0..raw.len()).collect();
        order.sort_by_key(|&i| (raw[i].1, raw[i].0, i));
        let scale = raw.iter().fold(0, |g, &(c, t)| gcd(gcd(g, c), t)).max(1);
        let pairs: Vec<(u64, u64)> = order
            .iter()
            .map(|&i| (raw[i].0 / scale, raw[i].1 / scale))
            .collect();
        let hash = fnv1a(&pairs);
        CanonicalSet {
            pairs,
            perm: order,
            scale,
            hash,
        }
    }

    /// The canonical `(wcet, period)` pairs — the exact memo key material.
    pub fn pairs(&self) -> &[(u64, u64)] {
        &self.pairs
    }

    /// `permutation()[canonical_index]` is the position the task held in
    /// the original request, for mapping verdict task ids back.
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// The collective gcd that was divided out.
    pub fn scale(&self) -> u64 {
        self.scale
    }

    /// FNV-1a hash of the canonical pairs. **Routing only** — never used
    /// for equality.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Materializes the canonical task set (ids `0..n` in sorted order).
    /// Fails when the pairs violate the task model (zero wcet, wcet >
    /// period, …) — the service turns that into a
    /// [`Verdict::Invalid`](crate::Verdict::Invalid) response.
    pub fn to_taskset(&self) -> Result<TaskSet, ModelError> {
        TaskSet::from_pairs(&self.pairs)
    }
}

/// A whole batch of canonicalized task sets in one structure-of-arrays
/// arena: every set's pairs live in one flat `Vec`, delimited by a bounds
/// array, with per-set hashes and scales alongside.
///
/// This exists for the batch hot path. Canonicalizing a 10k-request batch
/// via [`CanonicalSet::of_pairs`] costs three `Vec` allocations per
/// request (pairs, permutation, sort order); the arena costs a handful of
/// amortized ones for the whole batch, and the shards read their pair
/// slices straight out of one shared allocation (`Arc<CanonicalBatch>`)
/// instead of chasing per-job heap cells.
///
/// Canonical form is **identical** to [`CanonicalSet::of_pairs`] — same
/// sort key, same gcd rescale, same FNV-1a hash — pinned by the
/// `batch_matches_per_set_canonicalization` test.
#[derive(Debug, Default)]
pub struct CanonicalBatch {
    /// All sets' canonical pairs, concatenated in push order.
    pairs: Vec<(u64, u64)>,
    /// `bounds[i]..bounds[i + 1]` delimits set `i` in `pairs`.
    bounds: Vec<usize>,
    /// Per-set FNV-1a routing hash.
    hashes: Vec<u64>,
    /// Per-set collective gcd that was divided out.
    scales: Vec<u64>,
    /// Reused sort-order scratch — the SoA layout's whole point is that
    /// per-set temporaries do not survive (or allocate) per set.
    scratch: Vec<usize>,
}

impl CanonicalBatch {
    /// An empty batch sized for `sets` pushes (pair storage grows
    /// geometrically as sets arrive).
    pub fn with_capacity(sets: usize) -> Self {
        let mut bounds = Vec::with_capacity(sets + 1);
        bounds.push(0);
        CanonicalBatch {
            pairs: Vec::new(),
            bounds,
            hashes: Vec::with_capacity(sets),
            scales: Vec::with_capacity(sets),
            scratch: Vec::new(),
        }
    }

    /// Canonicalizes one raw `(wcet, period)` list into the arena and
    /// returns its index.
    pub fn push(&mut self, raw: &[(u64, u64)]) -> usize {
        if self.bounds.is_empty() {
            self.bounds.push(0); // `Default`-constructed batch
        }
        self.scratch.clear();
        self.scratch.extend(0..raw.len());
        self.scratch.sort_by_key(|&i| (raw[i].1, raw[i].0, i));
        let scale = raw.iter().fold(0, |g, &(c, t)| gcd(gcd(g, c), t)).max(1);
        let start = self.pairs.len();
        self.pairs.extend(
            self.scratch
                .iter()
                .map(|&i| (raw[i].0 / scale, raw[i].1 / scale)),
        );
        self.hashes.push(fnv1a(&self.pairs[start..]));
        self.scales.push(scale);
        self.bounds.push(self.pairs.len());
        self.hashes.len() - 1
    }

    /// Number of sets in the batch.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// Whether the batch holds no sets.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Set `idx`'s canonical pairs — bit-identical to what
    /// [`CanonicalSet::of_pairs`] would produce for the same input.
    pub fn pairs(&self, idx: usize) -> &[(u64, u64)] {
        &self.pairs[self.bounds[idx]..self.bounds[idx + 1]]
    }

    /// Set `idx`'s FNV-1a routing hash.
    pub fn hash(&self, idx: usize) -> u64 {
        self.hashes[idx]
    }

    /// Set `idx`'s collective gcd that was divided out.
    pub fn scale(&self, idx: usize) -> u64 {
        self.scales[idx]
    }

    /// Materializes set `idx` (see [`CanonicalSet::to_taskset`]).
    pub fn to_taskset(&self, idx: usize) -> Result<TaskSet, ModelError> {
        TaskSet::from_pairs(self.pairs(idx))
    }
}

/// FNV-1a over the little-endian bytes of each pair. Crate-visible so
/// restored memo entries can recompute their routing hash.
pub(crate) fn fnv1a(pairs: &[(u64, u64)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for &(c, t) in pairs {
        eat(c);
        eat(t);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalization_is_idempotent() {
        let raw = vec![(4, 16), (2, 8), (1, 4), (2, 8)];
        let once = CanonicalSet::of_pairs(&raw);
        let twice = CanonicalSet::of_pairs(once.pairs());
        assert_eq!(once.pairs(), twice.pairs());
        assert_eq!(once.hash(), twice.hash());
        assert_eq!(twice.scale(), 1, "already-canonical sets rescale by 1");
    }

    #[test]
    fn relabeling_and_scaling_collapse_to_one_form() {
        // The same set three ways: shuffled, scaled ×6, and plain.
        let plain = CanonicalSet::of_pairs(&[(1, 4), (2, 8), (2, 8), (4, 16)]);
        let shuffled = CanonicalSet::of_pairs(&[(2, 8), (4, 16), (1, 4), (2, 8)]);
        let scaled = CanonicalSet::of_pairs(&[(6, 24), (12, 48), (12, 48), (24, 96)]);
        assert_eq!(plain.pairs(), shuffled.pairs());
        assert_eq!(plain.pairs(), scaled.pairs());
        assert_eq!(scaled.scale(), 6);
        assert_eq!(plain.hash(), scaled.hash());
    }

    #[test]
    fn different_sets_stay_different() {
        let a = CanonicalSet::of_pairs(&[(1, 4), (2, 8)]);
        let b = CanonicalSet::of_pairs(&[(1, 4), (3, 8)]);
        assert_ne!(a.pairs(), b.pairs());
    }

    #[test]
    fn permutation_maps_back_to_request_positions() {
        let raw = vec![(4, 16), (1, 4), (2, 8)];
        let canon = CanonicalSet::of_pairs(&raw);
        // canonical order: (1,4) < (2,8) < (4,16) → original positions 1, 2, 0.
        assert_eq!(canon.permutation(), &[1, 2, 0]);
        for (ci, &oi) in canon.permutation().iter().enumerate() {
            let (c, t) = canon.pairs()[ci];
            assert_eq!((c * canon.scale(), t * canon.scale()), raw[oi]);
        }
    }

    #[test]
    fn taskset_and_pairs_entry_points_agree() {
        let ts = TaskSet::from_pairs(&[(3, 9), (6, 18)]).unwrap();
        let via_ts = CanonicalSet::of(&ts);
        let via_pairs = CanonicalSet::of_pairs(&[(3, 9), (6, 18)]);
        assert_eq!(via_ts, via_pairs);
        assert_eq!(via_ts.scale(), 3);
        assert!(via_ts.to_taskset().is_ok());
    }

    #[test]
    fn invalid_pairs_surface_at_materialization_not_canonicalization() {
        let canon = CanonicalSet::of_pairs(&[(5, 4)]); // wcet > period
        assert!(canon.to_taskset().is_err());
    }

    #[test]
    fn batch_matches_per_set_canonicalization() {
        let sets: Vec<Vec<(u64, u64)>> = vec![
            vec![(4, 16), (2, 8), (1, 4), (2, 8)],
            vec![(6, 24), (12, 48), (12, 48), (24, 96)],
            vec![],
            vec![(7, 13)],
            vec![(5, 4)], // invalid — canonicalizes fine, materializes Err
        ];
        let mut batch = CanonicalBatch::with_capacity(sets.len());
        for (i, raw) in sets.iter().enumerate() {
            assert_eq!(batch.push(raw), i);
        }
        assert_eq!(batch.len(), sets.len());
        for (i, raw) in sets.iter().enumerate() {
            let single = CanonicalSet::of_pairs(raw);
            assert_eq!(batch.pairs(i), single.pairs());
            assert_eq!(batch.hash(i), single.hash());
            assert_eq!(batch.scale(i), single.scale());
            assert_eq!(
                batch.to_taskset(i).is_ok(),
                single.to_taskset().is_ok(),
                "set {i}"
            );
        }
    }

    #[test]
    fn default_batch_accepts_pushes() {
        let mut batch = CanonicalBatch::default();
        assert!(batch.is_empty());
        batch.push(&[(1, 4)]);
        assert_eq!(batch.pairs(0), CanonicalSet::of_pairs(&[(1, 4)]).pairs());
    }
}
