//! Crash durability: generation-numbered checkpoints and the background
//! snapshot scheduler.
//!
//! A durable [`Service`](crate::Service) keeps two files per
//! **generation** `g` in its durability directory:
//!
//! * `memo.g{g}.snap` — the memo store, in the `RMTSMEM1` snapshot format;
//! * `journal.g{g}.log` — the session journal (`RMTSJRN1`), whose prefix
//!   is the checkpoint *compaction*: for every session live at the
//!   checkpoint, its original `Open` plus every committed delta, in order.
//!   Operations committed after the checkpoint append behind that prefix.
//!
//! ## Checkpoint rule
//!
//! A checkpoint is a stop-the-world barrier: a `Job::Checkpoint` rides
//! every shard's FIFO, so it observes every previously accepted operation;
//! each shard sends its export and then *pauses* until the checkpointer
//! finishes. With all shards paused no operation can commit, so generation
//! `g+1` is a consistent cut — no per-op sequence numbers needed. The new
//! memo snapshot and compacted journal are written atomically, the live
//! append handle is swapped to the new journal, and older generations are
//! deleted. Closed sessions and rejected deltas simply vanish at
//! compaction — that is the journal truncation.
//!
//! ## Recovery rule
//!
//! Recovery reads the **newest valid** journal for sessions and the
//! **newest valid** memo snapshot for the memo — independently, so a crash
//! between the two writes of a checkpoint is safe (the journal is only
//! swapped *after* both files exist). The loss bound: memo entries newer
//! than the last checkpoint are gone (≤ one snapshot interval); session
//! state loses **nothing acknowledged**, because every committed op was
//! journaled write-ahead.

use crate::journal::{self, JournalOp, JournalReport, JournalWriter};
use crate::queue::BoundedQueue;
use crate::shard::{Job, SessionState};
use crate::snapshot::{self, RestoreReport};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Durability knobs for a [`Service`](crate::Service).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Directory holding the generation files (created if absent).
    pub dir: PathBuf,
    /// Background checkpoint cadence (min 1ms; default 30s).
    pub snapshot_interval: Duration,
    /// Also checkpoint once this many mutations (fresh memo entries +
    /// committed session ops) accumulate (min 1; default 4096).
    pub snapshot_every_mutations: u64,
}

impl DurabilityConfig {
    /// Durability under `dir` with default cadence. Chain `with_*`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            snapshot_interval: Duration::from_secs(30),
            snapshot_every_mutations: 4096,
        }
    }

    /// Sets the background checkpoint interval (clamped to ≥ 1ms).
    pub fn with_snapshot_interval(mut self, interval: Duration) -> Self {
        self.snapshot_interval = interval.max(Duration::from_millis(1));
        self
    }

    /// Sets the mutation-count checkpoint trigger (min 1).
    pub fn with_snapshot_every_mutations(mut self, mutations: u64) -> Self {
        self.snapshot_every_mutations = mutations.max(1);
        self
    }
}

/// What recovery found and rebuilt (returned by
/// [`Service::with_durability`](crate::Service::with_durability)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The generation recovery resumed at (0 on first boot).
    pub generation: u64,
    /// Memo snapshot restore outcome.
    pub memo: RestoreReport,
    /// Journal read outcome.
    pub journal: JournalReport,
    /// Journal operations replayed through the session machinery.
    pub ops_replayed: usize,
    /// Sessions live again after replay.
    pub sessions_recovered: usize,
    /// Sessions whose replay did not reproduce a committed op (torn down
    /// rather than left half-applied; 0 in any honest run — replay is
    /// deterministic).
    pub sessions_failed: usize,
}

/// What one checkpoint wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointReport {
    /// The generation number written.
    pub generation: u64,
    /// Memo entries in the snapshot.
    pub memo_entries: usize,
    /// Live sessions in the compacted journal.
    pub sessions: usize,
    /// Size of the compacted journal in bytes.
    pub journal_bytes: usize,
    /// FNV-1a fold of every live session's state digest (name order) —
    /// two services with equal folds hold bit-identical session fleets.
    pub sessions_digest: u64,
}

/// Durability counters (mirror into `obs` as `svc.journal.*` /
/// `svc.checkpoint.*` via [`DurabilityStats::mirror_into_obs`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Current checkpoint generation.
    pub generation: u64,
    /// Journal records appended since start.
    pub journal_appends: u64,
    /// Journal bytes appended since start.
    pub journal_bytes: u64,
    /// Appends that failed with an I/O error (the service keeps serving,
    /// degraded to in-memory only — watch this counter).
    pub journal_append_errors: u64,
    /// Checkpoints completed since start.
    pub checkpoints: u64,
    /// Mutations accumulated since the last checkpoint.
    pub mutations_since_checkpoint: u64,
}

impl DurabilityStats {
    /// Mirrors the counters into the calling thread's `obs` recording
    /// (`svc.journal.appends`, `svc.journal.bytes`,
    /// `svc.journal.append_errors`, `svc.checkpoint.count`,
    /// `svc.checkpoint.generation`).
    pub fn mirror_into_obs(&self) {
        rmts_obs::count("svc.journal.appends", self.journal_appends);
        rmts_obs::count("svc.journal.bytes", self.journal_bytes);
        rmts_obs::count("svc.journal.append_errors", self.journal_append_errors);
        rmts_obs::count("svc.checkpoint.count", self.checkpoints);
        rmts_obs::count("svc.checkpoint.generation", self.generation);
    }
}

/// Shared durability state: the live journal handle plus counters. Shards
/// append through it (write-ahead, before replying); the checkpoint path
/// swaps the handle under the mutex while every shard is paused.
pub(crate) struct DurabilityState {
    pub(crate) dir: PathBuf,
    pub(crate) journal: Mutex<JournalWriter>,
    pub(crate) generation: AtomicU64,
    /// Serializes checkpoints against each other and against shutdown —
    /// the snapshot-generation lock that keeps a background snapshot and
    /// `shutdown_with_snapshot` off each other's target files.
    pub(crate) checkpoint_lock: Mutex<()>,
    pub(crate) mutations: AtomicU64,
    pub(crate) appends: AtomicU64,
    pub(crate) append_bytes: AtomicU64,
    pub(crate) append_errors: AtomicU64,
    pub(crate) checkpoints: AtomicU64,
}

impl DurabilityState {
    pub(crate) fn new(dir: PathBuf, writer: JournalWriter, generation: u64) -> Self {
        DurabilityState {
            dir,
            journal: Mutex::new(writer),
            generation: AtomicU64::new(generation),
            checkpoint_lock: Mutex::new(()),
            mutations: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            append_bytes: AtomicU64::new(0),
            append_errors: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
        }
    }

    /// Appends one committed op (write-ahead: call **before** sending the
    /// response). An I/O failure is counted, not propagated — the service
    /// keeps serving with degraded durability rather than failing live
    /// traffic.
    pub(crate) fn append(&self, op: &JournalOp) {
        let mut writer = self.journal.lock().expect("journal writer poisoned");
        match writer.append(op) {
            Ok(bytes) => {
                self.appends.fetch_add(1, Ordering::Relaxed);
                self.append_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
                self.mutations.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.append_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Counts a non-journaled mutation (a fresh memo entry) toward the
    /// mutation-triggered checkpoint.
    pub(crate) fn note_mutation(&self) {
        self.mutations.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn stats(&self) -> DurabilityStats {
        DurabilityStats {
            generation: self.generation.load(Ordering::Relaxed),
            journal_appends: self.appends.load(Ordering::Relaxed),
            journal_bytes: self.append_bytes.load(Ordering::Relaxed),
            journal_append_errors: self.append_errors.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            mutations_since_checkpoint: self.mutations.load(Ordering::Relaxed),
        }
    }
}

/// Path of generation `g`'s memo snapshot.
pub(crate) fn memo_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("memo.g{generation}.snap"))
}

/// Path of generation `g`'s session journal.
pub(crate) fn journal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("journal.g{generation}.log"))
}

/// Generation numbers present in `dir` for files shaped
/// `{prefix}{N}{suffix}`, ascending.
fn scan_generations(dir: &Path, prefix: &str, suffix: &str) -> Vec<u64> {
    let mut gens = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return gens;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(mid) = name
            .strip_prefix(prefix)
            .and_then(|rest| rest.strip_suffix(suffix))
        {
            if let Ok(g) = mid.parse::<u64>() {
                gens.push(g);
            }
        }
    }
    gens.sort_unstable();
    gens
}

/// `(newest memo generation, newest journal generation)` present in `dir`.
pub(crate) fn newest_generations(dir: &Path) -> (Option<u64>, Option<u64>) {
    let memo = scan_generations(dir, "memo.g", ".snap").pop();
    let journal = scan_generations(dir, "journal.g", ".log").pop();
    (memo, journal)
}

/// Best-effort removal of every generation file strictly older than
/// `keep` (crash stragglers included — they get another chance next
/// checkpoint).
fn remove_older_generations(dir: &Path, keep: u64) {
    for g in scan_generations(dir, "memo.g", ".snap") {
        if g < keep {
            let _ = std::fs::remove_file(memo_path(dir, g));
        }
    }
    for g in scan_generations(dir, "journal.g", ".log") {
        if g < keep {
            let _ = std::fs::remove_file(journal_path(dir, g));
        }
    }
}

/// The compaction records for a session fleet: per live session (name
/// order), its original `Open` plus every committed delta.
pub(crate) fn compaction_ops(sessions: &[SessionState]) -> Vec<JournalOp> {
    let mut ops = Vec::with_capacity(sessions.iter().map(|s| 1 + s.deltas.len()).sum());
    for s in sessions {
        ops.push(JournalOp::Open {
            session: s.name.clone(),
            base: s.base.clone(),
        });
        for delta in &s.deltas {
            ops.push(JournalOp::Delta {
                session: s.name.clone(),
                delta: delta.clone(),
            });
        }
    }
    ops
}

/// FNV-1a fold of the fleet's per-session digests, in name order.
pub(crate) fn fold_digests(sessions: &[SessionState]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for s in sessions {
        for b in s.name.bytes().chain(s.digest.to_le_bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Writes generation `generation` (memo snapshot, then compacted journal,
/// both atomic), swaps the live journal handle onto the new file, resets
/// the mutation counter, and deletes older generations. Caller must hold
/// the checkpoint lock and guarantee the fleet is quiescent (shards
/// paused, or drained and joined).
pub(crate) fn write_generation(
    dur: &DurabilityState,
    generation: u64,
    memo: &[snapshot::MemoEntry],
    sessions: &[SessionState],
) -> io::Result<CheckpointReport> {
    snapshot::write_snapshot(&memo_path(&dur.dir, generation), memo)?;
    let jpath = journal_path(&dur.dir, generation);
    let fp = snapshot::engine_fingerprint();
    let ops = compaction_ops(sessions);
    let journal_bytes = journal::write_journal(&jpath, &fp, &ops)?;
    let writer = JournalWriter::open_end(&jpath)?;
    *dur.journal.lock().expect("journal writer poisoned") = writer;
    dur.generation.store(generation, Ordering::Relaxed);
    dur.mutations.store(0, Ordering::Relaxed);
    dur.checkpoints.fetch_add(1, Ordering::Relaxed);
    remove_older_generations(&dur.dir, generation);
    Ok(CheckpointReport {
        generation,
        memo_entries: memo.len(),
        sessions: sessions.len(),
        journal_bytes,
        sessions_digest: fold_digests(sessions),
    })
}

/// Runs one stop-the-world checkpoint against a live fleet. Returns
/// `Ok(None)` when the service is shutting down (closed queues) — the
/// graceful-shutdown path writes its own final generation under the same
/// lock, so skipping here loses nothing.
pub(crate) fn run_checkpoint(
    queues: &[Arc<BoundedQueue<Job>>],
    dur: &DurabilityState,
) -> io::Result<Option<CheckpointReport>> {
    let _guard = dur
        .checkpoint_lock
        .lock()
        .expect("checkpoint lock poisoned");
    // `resumes` holds every paused shard's wake-up sender; dropping it —
    // on *any* exit path, including errors — resumes the fleet.
    let mut resumes = Vec::with_capacity(queues.len());
    let mut pending = Vec::with_capacity(queues.len());
    for q in queues {
        let (reply_tx, reply_rx) = mpsc::channel();
        let (resume_tx, resume_rx) = mpsc::channel();
        if q.push(Job::Checkpoint {
            reply: reply_tx,
            resume: resume_rx,
        })
        .is_err()
        {
            return Ok(None); // shutting down; drop(resumes) unpauses
        }
        resumes.push(resume_tx);
        pending.push(reply_rx);
    }
    let mut memo = Vec::new();
    let mut sessions = Vec::new();
    for rx in pending {
        match rx.recv() {
            Ok(export) => {
                memo.extend(export.memo);
                sessions.extend(export.sessions);
            }
            Err(_) => return Ok(None), // worker raced shutdown
        }
    }
    // Every shard is paused now: no op can commit, no journal append can
    // land — the cut is consistent.
    memo.sort_by(|a, b| (&a.pairs, a.m, &a.engine).cmp(&(&b.pairs, b.m, &b.engine)));
    sessions.sort_by(|a, b| a.name.cmp(&b.name));
    let generation = dur.generation.load(Ordering::Relaxed) + 1;
    let report = write_generation(dur, generation, &memo, &sessions)?;
    drop(resumes);
    Ok(Some(report))
}

/// The background snapshot scheduler: a thread that checkpoints every
/// `interval` or once `every_mutations` mutations accumulate, whichever
/// comes first. Stopping joins the thread; an in-flight checkpoint
/// completes first.
pub(crate) struct SchedulerHandle {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl SchedulerHandle {
    pub(crate) fn spawn(
        queues: Vec<Arc<BoundedQueue<Job>>>,
        dur: Arc<DurabilityState>,
        interval: Duration,
        every_mutations: u64,
    ) -> Self {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop2 = Arc::clone(&stop);
        // Wake often enough to notice the mutation trigger without
        // spinning; the interval itself can be much longer.
        let tick = interval
            .min(Duration::from_millis(25))
            .max(Duration::from_millis(1));
        let handle = std::thread::Builder::new()
            .name("rmts-svc-snapshots".to_string())
            .spawn(move || {
                let (lock, cv) = &*stop2;
                let mut last = Instant::now();
                let mut stopped = lock.lock().expect("scheduler stop flag poisoned");
                loop {
                    let (guard, _timeout) = cv
                        .wait_timeout(stopped, tick)
                        .expect("scheduler stop flag poisoned");
                    stopped = guard;
                    if *stopped {
                        return;
                    }
                    let due_time = last.elapsed() >= interval;
                    let due_load = dur.mutations.load(Ordering::Relaxed) >= every_mutations;
                    if !(due_time || due_load) {
                        continue;
                    }
                    if dur.mutations.load(Ordering::Relaxed) == 0 {
                        last = Instant::now(); // nothing new — skip the rewrite
                        continue;
                    }
                    drop(stopped);
                    // Best-effort: an I/O failure leaves the previous
                    // generation intact and the next tick retries.
                    let _ = run_checkpoint(&queues, &dur);
                    last = Instant::now();
                    stopped = lock.lock().expect("scheduler stop flag poisoned");
                }
            })
            .expect("spawn snapshot scheduler");
        SchedulerHandle {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the thread and joins it (idempotent).
    pub(crate) fn stop(&mut self) {
        let (lock, cv) = &*self.stop;
        *lock.lock().expect("scheduler stop flag poisoned") = true;
        cv.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for SchedulerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}
