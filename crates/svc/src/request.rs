//! The service's request/response vocabulary.
//!
//! Everything here is serde-serializable: a JSONL line is a complete,
//! reconstructible analysis question ([`AnalyzeRequest`]) or answer
//! ([`AnalysisOutcome`]), which is what `rmts-cli serve-batch` streams.
//! The vendored serde derive has no field defaults, so requests carry
//! every field explicitly; in Rust, build them with the same uniform
//! chaining idiom as the engines (`AnalyzeRequest::new(..).with_degrade(true)`).

use rmts_core::{
    AdmissionPolicy, AlgorithmSpec, AnalysisBudget, EngineOptions, Exactness, PartitionPhase,
};
use rmts_taskmodel::{AnalysisError, TaskSetDelta};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// Wire protocol version of the classic analyze line. Implicit: a request
/// line without a `version` field is a v1 [`AnalyzeRequest`], so every
/// recorded corpus keeps parsing unchanged.
pub const WIRE_V1: u64 = 1;

/// Wire protocol version of session lines ([`RepartitionRequest`]).
pub const WIRE_V2: u64 = 2;

/// A serializable [`AnalysisBudget`]: same dimensions, with the wall-clock
/// deadline in milliseconds (`Duration` has no serde support in the
/// vendored stub, and ms is the CLI's existing `--deadline-ms` granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct BudgetSpec {
    /// Wall-clock allowance in milliseconds. **Non-deterministic**: results
    /// under a deadline may legitimately differ between runs, so the
    /// memo-hit ≡ fresh guarantee only covers the other dimensions.
    pub deadline_ms: Option<u64>,
    /// Cap on fixed-point iterations / scheduling-point evaluations.
    pub max_iterations: Option<u64>,
    /// Cap on admission probes.
    pub max_probes: Option<u64>,
    /// Cap on derived simulation horizons.
    pub horizon_cap: Option<u64>,
}

impl BudgetSpec {
    /// The budget that never exhausts (identical to `Default`).
    pub fn unlimited() -> Self {
        BudgetSpec::default()
    }

    /// Lowers into the analysis-layer budget.
    pub fn to_budget(&self) -> AnalysisBudget {
        AnalysisBudget {
            deadline: self.deadline_ms.map(Duration::from_millis),
            max_iterations: self.max_iterations,
            max_probes: self.max_probes,
            horizon_cap: self.horizon_cap,
        }
    }

    /// `true` when any dimension depends on wall-clock time, voiding the
    /// bit-identity guarantee for memoized results.
    pub fn is_wall_clock(&self) -> bool {
        self.deadline_ms.is_some()
    }
}

/// One schedulability question: can `taskset` be partitioned onto `m`
/// processors by `algorithm` under the given options?
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyzeRequest {
    /// `(wcet, period)` pairs in ticks. Order and labels do not matter —
    /// the service canonicalizes before analysis.
    pub taskset: Vec<(u64, u64)>,
    /// Number of processors.
    pub m: usize,
    /// Which algorithm to run.
    pub algorithm: AlgorithmSpec,
    /// Optional admission-policy override (budgeted algorithms only).
    pub policy: Option<AdmissionPolicy>,
    /// Analysis budget per request.
    pub budget: BudgetSpec,
    /// Walk the degradation ladder on exhaustion instead of rejecting.
    pub degrade: bool,
}

impl AnalyzeRequest {
    /// A request with default options (no policy override, unlimited
    /// budget, no degradation). Chain `with_*` to refine — the same
    /// uniform-builder idiom as the engines themselves.
    pub fn new(taskset: Vec<(u64, u64)>, m: usize, algorithm: AlgorithmSpec) -> Self {
        AnalyzeRequest {
            taskset,
            m,
            algorithm,
            policy: None,
            budget: BudgetSpec::unlimited(),
            degrade: false,
        }
    }

    /// Overrides the admission policy.
    pub fn with_policy(mut self, policy: AdmissionPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Sets the analysis budget.
    pub fn with_budget(mut self, budget: BudgetSpec) -> Self {
        self.budget = budget;
        self
    }

    /// Enables/disables ladder degradation.
    pub fn with_degrade(mut self, degrade: bool) -> Self {
        self.degrade = degrade;
        self
    }

    /// The engine options this request denotes.
    pub fn options(&self) -> EngineOptions {
        EngineOptions {
            policy: self.policy,
            budget: self.budget.to_budget(),
            degrade: self.degrade,
        }
    }
}

/// One operation against a named partition session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SessionOp {
    /// Opens the session by partitioning a base request (replacing any
    /// prior session under the same name).
    Open {
        /// The base analysis question; its task set is canonicalized, so
        /// subsequent deltas refer to **canonical indices** (position
        /// after the `(period, wcet)` sort).
        base: AnalyzeRequest,
    },
    /// Applies a delta to the open session. On rejection or an invalid
    /// delta the session keeps its prior state (admission control).
    Delta {
        /// Ops against the session's canonical task ids; `Add` ops must
        /// pick fresh ids (≥ the base set's size is always safe).
        delta: TaskSetDelta,
    },
    /// Closes the session, discarding its state. The answer echoes the
    /// final committed partition's verdict; closing an unknown session is
    /// `Invalid`. A closed session drops out of the durability journal at
    /// the next checkpoint.
    Close,
}

/// A v2 wire request: one [`SessionOp`] against a named session. All ops
/// for a session name are routed to one shard and served in submission
/// order, so a JSONL stream reads as a session script.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepartitionRequest {
    /// Wire protocol version; always [`WIRE_V2`].
    pub version: u64,
    /// Client-chosen session name.
    pub session: String,
    /// The operation.
    pub op: SessionOp,
}

impl RepartitionRequest {
    /// An `Open` line for `session`.
    pub fn open(session: impl Into<String>, base: AnalyzeRequest) -> Self {
        RepartitionRequest {
            version: WIRE_V2,
            session: session.into(),
            op: SessionOp::Open { base },
        }
    }

    /// A `Delta` line for `session`.
    pub fn delta(session: impl Into<String>, delta: TaskSetDelta) -> Self {
        RepartitionRequest {
            version: WIRE_V2,
            session: session.into(),
            op: SessionOp::Delta { delta },
        }
    }

    /// A `Close` line for `session`.
    pub fn close(session: impl Into<String>) -> Self {
        RepartitionRequest {
            version: WIRE_V2,
            session: session.into(),
            op: SessionOp::Close,
        }
    }
}

/// Any wire request, across protocol versions.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// v1: a stateless analysis question.
    Analyze(AnalyzeRequest),
    /// v2: a session operation.
    Repartition(RepartitionRequest),
}

/// Session metadata attached to a [`Response`] answering a v2 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionMeta {
    /// The session name the operation addressed.
    pub session: String,
    /// How the answer was produced: `open` for `Open` ops, the
    /// [`RepartitionPath`](rmts_core::RepartitionPath) (`noop` /
    /// `incremental` / `full`) for committed or rejected deltas, `error`
    /// when the operation itself was invalid.
    pub path: String,
}

/// The answer to one request. Task ids refer to **canonical indices**
/// (position after the `(period, wcet)` sort); map back with
/// [`CanonicalSet::permutation`](crate::CanonicalSet::permutation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    /// A valid partition exists.
    Accepted {
        /// Processors the partition actually uses (non-empty workloads).
        processors_used: usize,
        /// Canonical ids of the tasks that were split.
        splits: Vec<u32>,
        /// Whether every admission verdict came from exact analysis.
        exactness: Exactness,
    },
    /// The algorithm rejected the set.
    Rejected {
        /// The phase that gave up.
        phase: PartitionPhase,
        /// The canonical id whose placement failed, when identifiable.
        task: Option<u32>,
        /// All canonical ids left (partially) unassigned.
        unassigned: Vec<u32>,
        /// The typed budget-exhaustion error, when the rejection came from
        /// running out of budget rather than infeasibility.
        analysis: Option<AnalysisError>,
        /// Human-readable reason.
        reason: String,
    },
    /// The request could not be analyzed at all: malformed task set,
    /// unrepresentable options, or a panic in the engine (isolated to this
    /// request — the shard survives).
    Invalid {
        /// What went wrong.
        reason: String,
    },
}

/// The full, serializable analysis answer — exactly what the memo table
/// stores, so a memo hit is *definitionally* the same bytes as the first
/// fresh analysis of that canonical form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisOutcome {
    /// Engine display name (e.g. `RM-TS[harmonic-chain]`).
    pub algorithm: String,
    /// Processor count the question was asked for.
    pub m: usize,
    /// The verdict.
    pub verdict: Verdict,
}

/// A completed request: the outcome plus service-side metadata. The
/// metadata (shard, memo hit) is deliberately *outside* [`AnalysisOutcome`]
/// so that memoized and fresh responses carry identical outcomes.
#[derive(Debug, Clone)]
pub struct Response {
    /// Position of the request in its batch (or submission order).
    pub index: usize,
    /// Routing hash of the canonical task set.
    pub canonical_hash: u64,
    /// Shard that served the request.
    pub shard: usize,
    /// Whether the outcome came from the memo table.
    pub memo_hit: bool,
    /// Session metadata (v2 requests only; `None` for plain analyzes).
    pub session: Option<SessionMeta>,
    /// The analysis answer (shared with the memo table).
    pub outcome: Arc<AnalysisOutcome>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_json() {
        let req = AnalyzeRequest::new(
            vec![(1, 4), (2, 8)],
            2,
            AlgorithmSpec::RmTs {
                bound: rmts_core::BoundSpec::HarmonicChain,
            },
        )
        .with_budget(BudgetSpec {
            max_iterations: Some(1000),
            ..BudgetSpec::unlimited()
        })
        .with_degrade(true);
        let json = serde_json::to_string(&req).unwrap();
        assert_eq!(serde_json::from_str::<AnalyzeRequest>(&json).unwrap(), req);
    }

    #[test]
    fn outcome_round_trips_through_json() {
        for verdict in [
            Verdict::Accepted {
                processors_used: 2,
                splits: vec![3],
                exactness: Exactness::Exact,
            },
            Verdict::Rejected {
                phase: PartitionPhase::AssignNormal,
                task: Some(1),
                unassigned: vec![1, 2],
                analysis: None,
                reason: "does not fit".into(),
            },
            Verdict::Invalid {
                reason: "wcet exceeds period".into(),
            },
        ] {
            let out = AnalysisOutcome {
                algorithm: "RM-TS/light".into(),
                m: 2,
                verdict,
            };
            let json = serde_json::to_string(&out).unwrap();
            assert_eq!(serde_json::from_str::<AnalysisOutcome>(&json).unwrap(), out);
        }
    }

    #[test]
    fn budget_spec_lowers_faithfully() {
        let spec = BudgetSpec {
            deadline_ms: Some(5),
            max_iterations: Some(7),
            max_probes: None,
            horizon_cap: Some(9),
        };
        let b = spec.to_budget();
        assert_eq!(b.deadline, Some(Duration::from_millis(5)));
        assert_eq!(b.max_iterations, Some(7));
        assert_eq!(b.max_probes, None);
        assert_eq!(b.horizon_cap, Some(9));
        assert!(spec.is_wall_clock());
        assert!(!BudgetSpec::unlimited().is_wall_clock());
        assert!(BudgetSpec::unlimited().to_budget().is_unlimited());
    }
}
