//! A worker shard: long-lived engines, a memo table, and panic isolation.
//!
//! Each shard is one OS thread owning two maps:
//!
//! * an **engine arena** — one built [`DynPartitioner`] per distinct
//!   engine fingerprint (algorithm + options + task-set size for the
//!   size-dependent SPA thresholds), so a million requests against the
//!   same configuration construct the engine once; and
//! * a **memo table** — `(canonical pairs, m, engine fingerprint) →
//!   Arc<AnalysisOutcome>`. The key stores the *full* canonical pair list,
//!   not a hash, so collisions are impossible; the routing hash only
//!   decides which shard a request lands on.
//!
//! A request that panics inside the engine (e.g. `m = 0` trips the
//! engines' `assert!(m > 0)`) is contained by per-request `catch_unwind`
//! — sound because engines are plain configuration values: all mutable
//! analysis state (processor lists, RTA caches) lives in the panicked
//! call's own frame and is discarded with it. The requester receives a
//! [`Verdict::Invalid`] response and the shard keeps serving.

use crate::canonical::{fnv1a, CanonicalBatch, CanonicalSet};
use crate::durability::DurabilityState;
use crate::journal::JournalOp;
use crate::queue::BoundedQueue;
use crate::request::{
    AnalysisOutcome, AnalyzeRequest, RepartitionRequest, Response, SessionMeta, SessionOp, Verdict,
};
use crate::service::SharedStats;
use crate::snapshot::MemoEntry;
use rmts_core::{
    DynPartitioner, Partition, PartitionReject, PartitionSession, PartitionWorkspace,
    RepartitionError,
};
use rmts_taskmodel::{ModelError, TaskSet};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// A job's canonical form: either its own [`CanonicalSet`] (single
/// submissions) or a slice of the batch-wide [`CanonicalBatch`] arena
/// (batch submissions — one shared allocation instead of three `Vec`s per
/// request).
pub(crate) enum CanonJob {
    /// A per-request canonical set ([`crate::Service::submit`]).
    Owned(CanonicalSet),
    /// Set `idx` of a batch-wide arena
    /// ([`crate::Service::analyze_batch`]).
    Shared {
        batch: Arc<CanonicalBatch>,
        idx: usize,
    },
}

impl CanonJob {
    /// The canonical `(wcet, period)` pairs — exact memo key material.
    pub(crate) fn pairs(&self) -> &[(u64, u64)] {
        match self {
            CanonJob::Owned(c) => c.pairs(),
            CanonJob::Shared { batch, idx } => batch.pairs(*idx),
        }
    }

    /// FNV-1a routing hash of the canonical pairs.
    pub(crate) fn hash(&self) -> u64 {
        match self {
            CanonJob::Owned(c) => c.hash(),
            CanonJob::Shared { batch, idx } => batch.hash(*idx),
        }
    }

    /// Materializes the canonical task set.
    pub(crate) fn to_taskset(&self) -> Result<TaskSet, ModelError> {
        match self {
            CanonJob::Owned(c) => c.to_taskset(),
            CanonJob::Shared { batch, idx } => batch.to_taskset(*idx),
        }
    }
}

/// One unit of work.
pub(crate) enum Job {
    /// A stateless v1 analysis (routed by canonical hash).
    Analyze(AnalyzeJob),
    /// A v2 session operation (routed by session-name hash, so all ops of
    /// a session serialize through one shard's FIFO).
    Session(SessionJob),
    /// A full-state export (the snapshot/drain barrier): the shard
    /// answers with every memoized entry and live session it holds.
    /// Because shard queues are FIFO, the export observes every job
    /// enqueued before it — this is what makes
    /// [`Service::shutdown`](crate::Service::shutdown) a drain barrier
    /// rather than a best-effort flush.
    Export(mpsc::Sender<ShardExport>),
    /// A checkpoint barrier: like `Export`, but the shard then **pauses**
    /// (blocks on `resume`) until the checkpointer finishes writing the
    /// generation. With every shard paused no op can commit, so the
    /// checkpoint is a consistent cut of the whole fleet. Dropping the
    /// resume sender — on any checkpointer exit path — resumes the shard.
    Checkpoint {
        /// Where to send this shard's export.
        reply: mpsc::Sender<ShardExport>,
        /// Blocks the shard until the checkpointer drops its sender.
        resume: mpsc::Receiver<()>,
    },
}

/// Everything a shard owns that durability cares about.
pub(crate) struct ShardExport {
    /// The memo table (sorted).
    pub memo: Vec<MemoEntry>,
    /// The live sessions (sorted by name).
    pub sessions: Vec<SessionState>,
}

/// One live session's durable form: the original base request plus every
/// committed delta — exactly what replay needs to rebuild the session
/// bit-identically (engines are built against the *opening* set size, so
/// the base must never be re-expressed against the current set).
#[derive(Debug, Clone)]
pub(crate) struct SessionState {
    /// Session name.
    pub name: String,
    /// The base request the session was opened with.
    pub base: AnalyzeRequest,
    /// Every committed non-noop delta, in commit order.
    pub deltas: Vec<rmts_taskmodel::TaskSetDelta>,
    /// The session's current state digest (bit-identity oracle).
    pub digest: u64,
}

/// A canonicalized analyze request plus its reply channel.
pub(crate) struct AnalyzeJob {
    pub index: usize,
    pub canon: CanonJob,
    pub req: AnalyzeRequest,
    pub reply: mpsc::Sender<Response>,
}

/// A session operation plus its reply channel.
pub(crate) struct SessionJob {
    pub index: usize,
    /// Routing hash of the session name (echoed as the response's
    /// `canonical_hash` so records stay traceable to their shard).
    pub hash: u64,
    pub req: RepartitionRequest,
    pub reply: mpsc::Sender<Response>,
    /// Whether committed mutations are journaled. `true` for live
    /// submissions; `false` only for recovery replay, whose ops are
    /// *already* in the journal being replayed.
    pub record: bool,
}

/// Exact-equality memo key (see the module docs).
#[derive(PartialEq, Eq)]
struct MemoKey {
    pairs: Vec<(u64, u64)>,
    m: usize,
    engine: String,
}

/// The engine-fingerprint inputs of the last job, plus the rendered
/// string. Batches are typically homogeneous in their options, so this
/// one-entry cache makes the per-job fingerprint a handful of `Copy`
/// comparisons instead of a `format!`.
struct FingerprintCache {
    algorithm: rmts_core::AlgorithmSpec,
    policy: Option<rmts_core::AdmissionPolicy>,
    budget: crate::request::BudgetSpec,
    degrade: bool,
    n: usize,
    text: String,
}

type MemoBucket = Vec<(MemoKey, Arc<AnalysisOutcome>)>;

pub(crate) struct Shard {
    idx: usize,
    engines: HashMap<String, DynPartitioner>,
    /// Memo buckets keyed by `(canonical routing hash, m)`; each bucket is
    /// scanned with full exact-equality [`MemoKey`] comparison, so hash
    /// collisions cost a compare, never a wrong answer. The bucket layout
    /// keeps the hit path allocation-free (no owned key to build).
    memo: HashMap<(u64, usize), MemoBucket>,
    last_fp: Option<FingerprintCache>,
    /// Recycled partitioning buffers (processor pool + plan queue), reused
    /// across every fresh analysis this shard runs. Steady-state misses
    /// against same-sized sets admit without heap allocation in the
    /// engine's inner loop (DESIGN.md §5, "Partition hot path").
    ws: PartitionWorkspace,
    /// Live partition sessions keyed by session name (v2 requests). Each
    /// entry owns its engine, task set, partition, trace, and workspace,
    /// plus the durable op history (base + committed deltas).
    sessions: HashMap<String, LiveSession>,
    stats: Arc<SharedStats>,
    /// Write-ahead journal handle (durable services only).
    dur: Option<Arc<DurabilityState>>,
}

/// A live session plus its durable op history.
struct LiveSession {
    session: PartitionSession,
    base: AnalyzeRequest,
    deltas: Vec<rmts_taskmodel::TaskSetDelta>,
}

impl Shard {
    pub(crate) fn run(
        idx: usize,
        queue: Arc<BoundedQueue<Job>>,
        stats: Arc<SharedStats>,
        seed: Vec<MemoEntry>,
        dur: Option<Arc<DurabilityState>>,
    ) {
        let mut shard = Shard {
            idx,
            engines: HashMap::new(),
            memo: HashMap::new(),
            last_fp: None,
            ws: PartitionWorkspace::new(),
            sessions: HashMap::new(),
            stats,
            dur,
        };
        shard.seed_memo(seed);
        // Drain the queue in runs: one condvar round-trip (and, on a busy
        // machine, one context switch) buys up to `capacity` jobs.
        let run_len = queue.capacity();
        while let Some(jobs) = queue.pop_many(run_len) {
            let t0 = Instant::now();
            for job in jobs {
                match job {
                    Job::Analyze(job) => shard.serve(job),
                    Job::Session(job) => shard.serve_session(job),
                    Job::Export(reply) => {
                        let _ = reply.send(shard.export_state());
                    }
                    Job::Checkpoint { reply, resume } => {
                        let _ = reply.send(shard.export_state());
                        // Pause until the checkpointer finishes (or drops
                        // its sender on an abort path — same wake-up).
                        let _ = resume.recv();
                    }
                }
            }
            let ns = t0.elapsed().as_nanos() as u64;
            shard.stats.busy_ns[idx].fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Pre-populates the memo from restored snapshot entries. Duplicate
    /// keys keep the first entry (snapshots never contain two outcomes
    /// for one key, but a hostile file must not corrupt the table).
    fn seed_memo(&mut self, seed: Vec<MemoEntry>) {
        for entry in seed {
            let bucket_key = (fnv1a(&entry.pairs), entry.m);
            let bucket = self.memo.entry(bucket_key).or_default();
            if bucket
                .iter()
                .any(|(k, _)| k.engine == entry.engine && k.pairs == entry.pairs)
            {
                continue;
            }
            bucket.push((
                MemoKey {
                    pairs: entry.pairs,
                    m: entry.m,
                    engine: entry.engine,
                },
                Arc::new(entry.outcome),
            ));
        }
    }

    /// Serializes the memo table and session fleet for a checkpoint (or a
    /// drain barrier).
    fn export_state(&self) -> ShardExport {
        let mut memo: Vec<MemoEntry> = self
            .memo
            .values()
            .flatten()
            .map(|(k, outcome)| MemoEntry {
                pairs: k.pairs.clone(),
                m: k.m,
                engine: k.engine.clone(),
                outcome: (**outcome).clone(),
            })
            .collect();
        // Deterministic file order regardless of HashMap iteration.
        memo.sort_by(|a, b| (&a.pairs, a.m, &a.engine).cmp(&(&b.pairs, b.m, &b.engine)));
        let mut sessions: Vec<SessionState> = self
            .sessions
            .iter()
            .map(|(name, live)| SessionState {
                name: name.clone(),
                base: live.base.clone(),
                deltas: live.deltas.clone(),
                digest: live.session.state_digest(),
            })
            .collect();
        sessions.sort_by(|a, b| a.name.cmp(&b.name));
        ShardExport { memo, sessions }
    }

    fn serve(&mut self, job: AnalyzeJob) {
        let (outcome, memo_hit) = self.outcome_for(&job);
        let counter = if memo_hit {
            &self.stats.memo_hits
        } else {
            &self.stats.memo_misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.stats.completed.fetch_add(1, Ordering::Relaxed);
        // A dropped receiver (caller gave up on the ticket) is not an
        // error for the shard.
        let _ = job.reply.send(Response {
            index: job.index,
            canonical_hash: job.canon.hash(),
            shard: self.idx,
            memo_hit,
            session: None,
            outcome,
        });
    }

    fn serve_session(&mut self, job: SessionJob) {
        let (outcome, meta, mutation) = self.session_outcome(&job.req);
        // Write-ahead: the committed mutation must be journal-durable
        // *before* the response exists, so an acknowledged op can never be
        // lost to a crash. Replayed ops (`record == false`) are already in
        // the journal being replayed.
        if job.record {
            if let (Some(op), Some(dur)) = (mutation, self.dur.as_deref()) {
                dur.append(&op);
            }
        }
        // Session answers are stateful, never memoized.
        self.stats.memo_misses.fetch_add(1, Ordering::Relaxed);
        self.stats.completed.fetch_add(1, Ordering::Relaxed);
        let _ = job.reply.send(Response {
            index: job.index,
            canonical_hash: job.hash,
            shard: self.idx,
            memo_hit: false,
            session: Some(meta),
            outcome: Arc::new(outcome),
        });
    }

    /// Serves one session op. The third return is the journal record the
    /// op earned: `Some` exactly when durable state changed (an `Open`
    /// that stuck, a committed non-noop `Delta`, a `Close` of a live
    /// session, or a panic teardown — journaled as `Close` so the session
    /// cannot resurrect half-applied). Rejected and invalid ops change
    /// nothing and journal nothing.
    fn session_outcome(
        &mut self,
        req: &RepartitionRequest,
    ) -> (AnalysisOutcome, SessionMeta, Option<JournalOp>) {
        let meta = |path: &str| SessionMeta {
            session: req.session.clone(),
            path: path.to_string(),
        };
        match &req.op {
            SessionOp::Open { base } => {
                let (outcome, path, journaled) = self.open_session(&req.session, base);
                (outcome, meta(path), journaled)
            }
            SessionOp::Delta { delta } => {
                let (outcome, path, journaled) = self.apply_session_delta(&req.session, delta);
                (outcome, meta(&path), journaled)
            }
            SessionOp::Close => {
                let (outcome, path, journaled) = self.close_session(&req.session);
                (outcome, meta(path), journaled)
            }
        }
    }

    /// Closes a live session (the answer echoes its final partition);
    /// closing an unknown session is `Invalid` and journals nothing.
    fn close_session(&mut self, name: &str) -> (AnalysisOutcome, &'static str, Option<JournalOp>) {
        match self.sessions.remove(name) {
            Some(live) => (
                AnalysisOutcome {
                    algorithm: live.session.engine_name(),
                    m: live.session.m(),
                    verdict: accepted_verdict(live.session.partition()),
                },
                "close",
                Some(JournalOp::Close {
                    session: name.to_string(),
                }),
            ),
            None => (
                AnalysisOutcome {
                    algorithm: String::new(),
                    m: 0,
                    verdict: Verdict::Invalid {
                        reason: format!("unknown session `{name}` (send an Open line first)"),
                    },
                },
                "error",
                None,
            ),
        }
    }

    /// Opens (or replaces) a session by a traced base partition. A
    /// successful open is journaled; a rejected or invalid open leaves any
    /// prior same-name session (and the journal) untouched.
    fn open_session(
        &mut self,
        name: &str,
        base: &AnalyzeRequest,
    ) -> (AnalysisOutcome, &'static str, Option<JournalOp>) {
        let m = base.m;
        let invalid = |algorithm: String, reason: String| {
            (
                AnalysisOutcome {
                    algorithm,
                    m,
                    verdict: Verdict::Invalid { reason },
                },
                "error",
                None,
            )
        };
        let ts = match CanonicalSet::of_pairs(&base.taskset).to_taskset() {
            Ok(ts) => ts,
            Err(e) => return invalid(base.algorithm.to_string(), format!("invalid task set: {e}")),
        };
        let engine = match base
            .algorithm
            .build_repartitioner(ts.len(), &base.options())
        {
            Ok(e) => e,
            Err(e) => return invalid(base.algorithm.to_string(), e.to_string()),
        };
        let algorithm = engine.name();
        match catch_unwind(AssertUnwindSafe(|| PartitionSession::start(engine, ts, m))) {
            Ok(Ok(session)) => {
                let verdict = accepted_verdict(session.partition());
                self.sessions.insert(
                    name.to_string(),
                    LiveSession {
                        session,
                        base: base.clone(),
                        deltas: Vec::new(),
                    },
                );
                (
                    AnalysisOutcome {
                        algorithm,
                        m,
                        verdict,
                    },
                    "open",
                    Some(JournalOp::Open {
                        session: name.to_string(),
                        base: base.clone(),
                    }),
                )
            }
            Ok(Err(rej)) => (
                AnalysisOutcome {
                    algorithm,
                    m,
                    verdict: rejected_verdict(&rej),
                },
                "open",
                None,
            ),
            Err(payload) => {
                self.stats.panics.fetch_add(1, Ordering::Relaxed);
                invalid(
                    algorithm,
                    format!("engine panicked: {}", panic_text(&payload)),
                )
            }
        }
    }

    /// Applies one delta to an open session. On rejection or an invalid
    /// delta the session keeps its prior state (and journals nothing); on
    /// a panic the session is torn down (its state can no longer be
    /// trusted) and the teardown is journaled as a `Close`, so recovery
    /// can never resurrect it half-applied. A committed non-noop delta is
    /// appended to the session's durable history and journaled.
    fn apply_session_delta(
        &mut self,
        name: &str,
        delta: &rmts_taskmodel::TaskSetDelta,
    ) -> (AnalysisOutcome, String, Option<JournalOp>) {
        let Some(live) = self.sessions.get_mut(name) else {
            return (
                AnalysisOutcome {
                    algorithm: String::new(),
                    m: 0,
                    verdict: Verdict::Invalid {
                        reason: format!("unknown session `{name}` (send an Open line first)"),
                    },
                },
                "error".to_string(),
                None,
            );
        };
        let session = &mut live.session;
        let m = session.m();
        let algorithm = session.engine_name();
        match catch_unwind(AssertUnwindSafe(|| match session.apply(delta) {
            Ok(ok) => (
                accepted_verdict(ok.partition),
                ok.path.as_str().to_string(),
                !matches!(ok.path, rmts_core::RepartitionPath::Noop),
            ),
            Err(RepartitionError::Rejected { reject, path }) => {
                (rejected_verdict(&reject), path.as_str().to_string(), false)
            }
            Err(RepartitionError::Delta(e)) => (
                Verdict::Invalid {
                    reason: format!("invalid delta: {e}"),
                },
                "error".to_string(),
                false,
            ),
        })) {
            Ok((verdict, path, committed)) => {
                let journaled = committed.then(|| {
                    live.deltas.push(delta.clone());
                    JournalOp::Delta {
                        session: name.to_string(),
                        delta: delta.clone(),
                    }
                });
                (
                    AnalysisOutcome {
                        algorithm,
                        m,
                        verdict,
                    },
                    path,
                    journaled,
                )
            }
            Err(payload) => {
                self.sessions.remove(name);
                self.stats.panics.fetch_add(1, Ordering::Relaxed);
                (
                    AnalysisOutcome {
                        algorithm,
                        m,
                        verdict: Verdict::Invalid {
                            reason: format!(
                                "engine panicked (session torn down): {}",
                                panic_text(&payload)
                            ),
                        },
                    },
                    "error".to_string(),
                    Some(JournalOp::Close {
                        session: name.to_string(),
                    }),
                )
            }
        }
    }

    fn outcome_for(&mut self, job: &AnalyzeJob) -> (Arc<AnalysisOutcome>, bool) {
        // `Debug` of the request's option fields is deterministic (unit
        // enums, integers), making the fingerprint stable across runs. The
        // task-set size is folded in because the SPA thresholds Θ(n) make
        // engines size-dependent.
        let n = job.canon.pairs().len();
        let reuse = self.last_fp.as_ref().is_some_and(|c| {
            c.algorithm == job.req.algorithm
                && c.policy == job.req.policy
                && c.budget == job.req.budget
                && c.degrade == job.req.degrade
                && c.n == n
        });
        if !reuse {
            self.last_fp = Some(FingerprintCache {
                algorithm: job.req.algorithm,
                policy: job.req.policy,
                budget: job.req.budget,
                degrade: job.req.degrade,
                n,
                text: format!(
                    "{:?}|{:?}|{:?}|{}|{}",
                    job.req.algorithm, job.req.policy, job.req.budget, job.req.degrade, n
                ),
            });
        }
        let fp = &self.last_fp.as_ref().expect("just filled").text;
        let bucket_key = (job.canon.hash(), job.req.m);
        if let Some(bucket) = self.memo.get(&bucket_key) {
            if let Some((_, hit)) = bucket
                .iter()
                .find(|(k, _)| k.engine == *fp && k.pairs == job.canon.pairs())
            {
                return (Arc::clone(hit), true);
            }
        }
        // One `String` clone per miss: the fingerprint is cloned once for
        // the memo key and lent to `analyze` (which only clones it again on
        // the cold first-build of an engine).
        let engine_key = fp.clone();
        let outcome = Arc::new(self.analyze(job, n, &engine_key));
        let memo_key = MemoKey {
            pairs: job.canon.pairs().to_vec(),
            m: job.req.m,
            engine: engine_key,
        };
        self.memo
            .entry(bucket_key)
            .or_default()
            .push((memo_key, Arc::clone(&outcome)));
        // A fresh memo entry is not journaled (the memo is an optimization,
        // re-derivable from requests), but it does age the checkpoint.
        if let Some(dur) = self.dur.as_deref() {
            dur.note_mutation();
        }
        (outcome, false)
    }

    fn analyze(&mut self, job: &AnalyzeJob, n: usize, engine_key: &str) -> AnalysisOutcome {
        let invalid = |algorithm: String, reason: String| AnalysisOutcome {
            algorithm,
            m: job.req.m,
            verdict: Verdict::Invalid { reason },
        };
        let ts = match job.canon.to_taskset() {
            Ok(ts) => ts,
            Err(e) => {
                return invalid(
                    job.req.algorithm.to_string(),
                    format!("invalid task set: {e}"),
                )
            }
        };
        if !self.engines.contains_key(engine_key) {
            match job.req.algorithm.build_with(n, &job.req.options()) {
                Ok(built) => {
                    self.engines.insert(engine_key.to_string(), built);
                }
                Err(e) => return invalid(job.req.algorithm.to_string(), e.to_string()),
            }
        }
        let engine = self.engines.get_mut(engine_key).expect("just ensured");
        let name = engine.name();
        let m = job.req.m;
        // Disjoint-field reborrow so the closure can use the workspace
        // while `engine` borrows `self.engines`. Unwind safety: a panic
        // mid-partition leaves the workspace merely cold (its pool was
        // `mem::take`n into the call's own frame and dies with it; the plan
        // queue is cleared on next use), never inconsistent.
        let ws = &mut self.ws;
        match catch_unwind(AssertUnwindSafe(|| engine.partition_with(&ts, m, ws))) {
            Ok(Ok(p)) => {
                let verdict = Verdict::Accepted {
                    processors_used: p.processors.iter().filter(|q| !q.is_empty()).count(),
                    splits: p.split_tasks().iter().map(|t| t.0).collect(),
                    exactness: p.exactness,
                };
                self.ws.recycle(p);
                AnalysisOutcome {
                    algorithm: name,
                    m,
                    verdict,
                }
            }
            Ok(Err(rej)) => {
                let rej = *rej;
                let verdict = Verdict::Rejected {
                    phase: rej.phase,
                    task: rej.task.map(|t| t.0),
                    unassigned: rej.unassigned.iter().map(|t| t.0).collect(),
                    analysis: rej.analysis,
                    reason: rej.reason,
                };
                self.ws.recycle(rej.partial);
                AnalysisOutcome {
                    algorithm: name,
                    m,
                    verdict,
                }
            }
            Err(payload) => {
                self.stats.panics.fetch_add(1, Ordering::Relaxed);
                invalid(name, format!("engine panicked: {}", panic_text(&payload)))
            }
        }
    }
}

/// The `Accepted` verdict describing a partition (canonical ids).
fn accepted_verdict(p: &Partition) -> Verdict {
    Verdict::Accepted {
        processors_used: p.processors.iter().filter(|q| !q.is_empty()).count(),
        splits: p.split_tasks().iter().map(|t| t.0).collect(),
        exactness: p.exactness,
    }
}

/// The `Rejected` verdict describing a rejection (canonical ids).
fn rejected_verdict(rej: &PartitionReject) -> Verdict {
    Verdict::Rejected {
        phase: rej.phase,
        task: rej.task.map(|t| t.0),
        unassigned: rej.unassigned.iter().map(|t| t.0).collect(),
        analysis: rej.analysis,
        reason: rej.reason.clone(),
    }
}

/// Renders a panic payload (`&str`/`String` verbatim, opaque otherwise).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-text panic payload".to_string()
    }
}
