//! A worker shard: long-lived engines, a memo table, and panic isolation.
//!
//! Each shard is one OS thread owning two maps:
//!
//! * an **engine arena** — one built [`DynPartitioner`] per distinct
//!   engine fingerprint (algorithm + options + task-set size for the
//!   size-dependent SPA thresholds), so a million requests against the
//!   same configuration construct the engine once; and
//! * a **memo table** — `(canonical pairs, m, engine fingerprint) →
//!   Arc<AnalysisOutcome>`. The key stores the *full* canonical pair list,
//!   not a hash, so collisions are impossible; the routing hash only
//!   decides which shard a request lands on.
//!
//! A request that panics inside the engine (e.g. `m = 0` trips the
//! engines' `assert!(m > 0)`) is contained by per-request `catch_unwind`
//! — sound because engines are plain configuration values: all mutable
//! analysis state (processor lists, RTA caches) lives in the panicked
//! call's own frame and is discarded with it. The requester receives a
//! [`Verdict::Invalid`] response and the shard keeps serving.

use crate::canonical::CanonicalSet;
use crate::queue::BoundedQueue;
use crate::request::{AnalysisOutcome, AnalyzeRequest, Response, Verdict};
use crate::service::SharedStats;
use rmts_core::DynPartitioner;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// One unit of work: a canonicalized request plus its reply channel.
pub(crate) struct Job {
    pub index: usize,
    pub canon: CanonicalSet,
    pub req: AnalyzeRequest,
    pub reply: mpsc::Sender<Response>,
}

/// Exact-equality memo key (see the module docs).
#[derive(PartialEq, Eq)]
struct MemoKey {
    pairs: Vec<(u64, u64)>,
    m: usize,
    engine: String,
}

/// The engine-fingerprint inputs of the last job, plus the rendered
/// string. Batches are typically homogeneous in their options, so this
/// one-entry cache makes the per-job fingerprint a handful of `Copy`
/// comparisons instead of a `format!`.
struct FingerprintCache {
    algorithm: rmts_core::AlgorithmSpec,
    policy: Option<rmts_core::AdmissionPolicy>,
    budget: crate::request::BudgetSpec,
    degrade: bool,
    n: usize,
    text: String,
}

type MemoBucket = Vec<(MemoKey, Arc<AnalysisOutcome>)>;

pub(crate) struct Shard {
    idx: usize,
    engines: HashMap<String, DynPartitioner>,
    /// Memo buckets keyed by `(canonical routing hash, m)`; each bucket is
    /// scanned with full exact-equality [`MemoKey`] comparison, so hash
    /// collisions cost a compare, never a wrong answer. The bucket layout
    /// keeps the hit path allocation-free (no owned key to build).
    memo: HashMap<(u64, usize), MemoBucket>,
    last_fp: Option<FingerprintCache>,
    stats: Arc<SharedStats>,
}

impl Shard {
    pub(crate) fn run(idx: usize, queue: Arc<BoundedQueue<Job>>, stats: Arc<SharedStats>) {
        let mut shard = Shard {
            idx,
            engines: HashMap::new(),
            memo: HashMap::new(),
            last_fp: None,
            stats,
        };
        // Drain the queue in runs: one condvar round-trip (and, on a busy
        // machine, one context switch) buys up to `capacity` jobs.
        let run_len = queue.capacity();
        while let Some(jobs) = queue.pop_many(run_len) {
            let t0 = Instant::now();
            for job in jobs {
                shard.serve(job);
            }
            let ns = t0.elapsed().as_nanos() as u64;
            shard.stats.busy_ns[idx].fetch_add(ns, Ordering::Relaxed);
        }
    }

    fn serve(&mut self, job: Job) {
        let (outcome, memo_hit) = self.outcome_for(&job);
        let counter = if memo_hit {
            &self.stats.memo_hits
        } else {
            &self.stats.memo_misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.stats.completed.fetch_add(1, Ordering::Relaxed);
        // A dropped receiver (caller gave up on the ticket) is not an
        // error for the shard.
        let _ = job.reply.send(Response {
            index: job.index,
            canonical_hash: job.canon.hash(),
            shard: self.idx,
            memo_hit,
            outcome,
        });
    }

    fn outcome_for(&mut self, job: &Job) -> (Arc<AnalysisOutcome>, bool) {
        // `Debug` of the request's option fields is deterministic (unit
        // enums, integers), making the fingerprint stable across runs. The
        // task-set size is folded in because the SPA thresholds Θ(n) make
        // engines size-dependent.
        let n = job.canon.pairs().len();
        let reuse = self.last_fp.as_ref().is_some_and(|c| {
            c.algorithm == job.req.algorithm
                && c.policy == job.req.policy
                && c.budget == job.req.budget
                && c.degrade == job.req.degrade
                && c.n == n
        });
        if !reuse {
            self.last_fp = Some(FingerprintCache {
                algorithm: job.req.algorithm,
                policy: job.req.policy,
                budget: job.req.budget,
                degrade: job.req.degrade,
                n,
                text: format!(
                    "{:?}|{:?}|{:?}|{}|{}",
                    job.req.algorithm, job.req.policy, job.req.budget, job.req.degrade, n
                ),
            });
        }
        let fp = &self.last_fp.as_ref().expect("just filled").text;
        let bucket_key = (job.canon.hash(), job.req.m);
        if let Some(bucket) = self.memo.get(&bucket_key) {
            if let Some((_, hit)) = bucket
                .iter()
                .find(|(k, _)| k.engine == *fp && k.pairs == job.canon.pairs())
            {
                return (Arc::clone(hit), true);
            }
        }
        let engine_key = fp.clone();
        let memo_key = MemoKey {
            pairs: job.canon.pairs().to_vec(),
            m: job.req.m,
            engine: engine_key.clone(),
        };
        let outcome = Arc::new(self.analyze(job, n, engine_key));
        self.memo
            .entry(bucket_key)
            .or_default()
            .push((memo_key, Arc::clone(&outcome)));
        (outcome, false)
    }

    fn analyze(&mut self, job: &Job, n: usize, engine_key: String) -> AnalysisOutcome {
        let invalid = |algorithm: String, reason: String| AnalysisOutcome {
            algorithm,
            m: job.req.m,
            verdict: Verdict::Invalid { reason },
        };
        let ts = match job.canon.to_taskset() {
            Ok(ts) => ts,
            Err(e) => {
                return invalid(
                    job.req.algorithm.to_string(),
                    format!("invalid task set: {e}"),
                )
            }
        };
        let engine = match self.engines.entry(engine_key) {
            Entry::Occupied(o) => o.into_mut(),
            Entry::Vacant(v) => match job.req.algorithm.build_with(n, &job.req.options()) {
                Ok(built) => v.insert(built),
                Err(e) => return invalid(job.req.algorithm.to_string(), e.to_string()),
            },
        };
        let m = job.req.m;
        match catch_unwind(AssertUnwindSafe(|| engine.partition(&ts, m))) {
            Ok(Ok(p)) => AnalysisOutcome {
                algorithm: engine.name(),
                m,
                verdict: Verdict::Accepted {
                    processors_used: p.processors.iter().filter(|q| !q.is_empty()).count(),
                    splits: p.split_tasks().iter().map(|t| t.0).collect(),
                    exactness: p.exactness,
                },
            },
            Ok(Err(rej)) => AnalysisOutcome {
                algorithm: engine.name(),
                m,
                verdict: Verdict::Rejected {
                    phase: rej.phase,
                    task: rej.task.map(|t| t.0),
                    unassigned: rej.unassigned.iter().map(|t| t.0).collect(),
                    analysis: rej.analysis,
                    reason: rej.reason.clone(),
                },
            },
            Err(payload) => {
                self.stats.panics.fetch_add(1, Ordering::Relaxed);
                let name = engine.name();
                invalid(name, format!("engine panicked: {}", panic_text(&payload)))
            }
        }
    }
}

/// Renders a panic payload (`&str`/`String` verbatim, opaque otherwise).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-text panic payload".to_string()
    }
}
