//! Persistent memo store: snapshot/restore of shard memo tables.
//!
//! A [`Service`](crate::Service) accumulates shard-local memo tables
//! mapping `(canonical pairs, m, engine fingerprint)` to analysis
//! outcomes. Restarting the process discards them — and with them the
//! duplicate-heavy speedup the memo produces. This module makes the memo
//! durable: [`write_snapshot`] serializes every entry to a single file,
//! and [`read_snapshot`] restores them on startup so a restarted server
//! answers warm from the first request.
//!
//! ## File format (all integers little-endian)
//!
//! ```text
//! header:
//!   magic        8  bytes   b"RMTSMEM1"
//!   fp_len       u32        length of the build fingerprint
//!   fingerprint  fp_len     engine build fingerprint (utf-8)
//! record (repeated until EOF):
//!   payload_len  u32        length of the payload that follows the checksum
//!   checksum     u64        FNV-1a over the payload bytes
//!   payload:
//!     engine_len u32        per-entry engine fingerprint length
//!     engine     engine_len algorithm|policy|budget|degrade|n (utf-8)
//!     m          u64        processor count of the memoized question
//!     n_pairs    u32        number of canonical (wcet, period) pairs
//!     pairs      n_pairs×16 canonical pairs, (wcet u64, period u64) each
//!     outcome_len u32       serialized outcome length
//!     outcome    outcome_len  AnalysisOutcome as JSON (utf-8)
//! ```
//!
//! Every entry carries **both** fingerprints: the header's build
//! fingerprint gates the whole file (a snapshot written by a differently
//! versioned engine is *stale* and ignored wholesale), and the per-entry
//! engine fingerprint is part of the memo key itself (so even within one
//! build, an entry can only ever answer for the exact engine
//! configuration that produced it).
//!
//! ## Trust policy
//!
//! A snapshot is an optimization, never an authority. Restore trusts
//! nothing it cannot verify:
//!
//! * wrong magic or build fingerprint → **stale**, zero entries restored;
//! * truncated record, bad checksum, or unparsable payload → **corrupt**,
//!   reading stops at the last good record (a torn tail cannot smuggle a
//!   half-written entry in);
//! * every accepted entry still re-validates structurally (lengths are
//!   bounded before allocation).
//!
//! The worst possible outcome of a damaged snapshot is a *cold* memo —
//! never a wrong answer. Writes are atomic (temp file + rename), so a
//! crash mid-snapshot leaves the previous snapshot intact.

use crate::request::AnalysisOutcome;
use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::Path;

/// Leading magic of a memo snapshot file (the `1` is the format version).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"RMTSMEM1";

/// Upper bound on any declared length field, checked **before**
/// allocating: a corrupt length can waste at most this much memory.
/// Shared with the session journal, which uses the same framing.
pub(crate) const MAX_FIELD_LEN: usize = 64 << 20;

/// The build fingerprint stamped into snapshot headers. Snapshots written
/// by a different engine build are rejected as stale — analysis outcomes
/// are only portable between identically versioned engines.
pub fn engine_fingerprint() -> String {
    format!("rmts-engine/{}/memo-fmt1", env!("CARGO_PKG_VERSION"))
}

/// One memoized analysis: the full memo key plus the stored outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoEntry {
    /// Canonical `(wcet, period)` pairs — the exact-equality key material.
    pub pairs: Vec<(u64, u64)>,
    /// Processor count the question was asked for.
    pub m: usize,
    /// Per-entry engine fingerprint (algorithm, policy, budget, degrade,
    /// set size) — the third memo-key component.
    pub engine: String,
    /// The memoized answer.
    pub outcome: AnalysisOutcome,
}

/// What [`write_snapshot`] persisted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotReport {
    /// Entries written.
    pub entries: usize,
    /// Total file size in bytes.
    pub bytes: usize,
}

/// What [`read_snapshot`] found. Exactly one of the flag fields explains
/// a cold (or partially cold) restore; all false means a clean full
/// restore.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreReport {
    /// Entries restored into the memo.
    pub restored: usize,
    /// No snapshot file existed (first boot) — a clean cold start.
    pub missing: bool,
    /// The file's build fingerprint (or magic) did not match this engine:
    /// the whole snapshot was ignored.
    pub stale: bool,
    /// A truncated or checksum-failing record stopped the restore early;
    /// entries before the damage were kept.
    pub corrupt: bool,
}

/// FNV-1a over raw bytes — the record checksum (shared with the journal).
pub(crate) fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Serializes one entry's record payload (everything after the checksum).
fn encode_payload(entry: &MemoEntry) -> Result<Vec<u8>, String> {
    let outcome =
        serde_json::to_string(&entry.outcome).map_err(|e| format!("serialize outcome: {e}"))?;
    let mut p =
        Vec::with_capacity(64 + entry.engine.len() + 16 * entry.pairs.len() + outcome.len());
    put_u32(&mut p, entry.engine.len() as u32);
    p.extend_from_slice(entry.engine.as_bytes());
    put_u64(&mut p, entry.m as u64);
    put_u32(&mut p, entry.pairs.len() as u32);
    for &(c, t) in &entry.pairs {
        put_u64(&mut p, c);
        put_u64(&mut p, t);
    }
    put_u32(&mut p, outcome.len() as u32);
    p.extend_from_slice(outcome.as_bytes());
    Ok(p)
}

/// Writes a snapshot atomically: serialize to `<path>.tmp.<pid>`, fsync,
/// rename over `path`. A crash at any point leaves either the old
/// snapshot or the new one, never a torn file at `path`.
pub fn write_snapshot(path: &Path, entries: &[MemoEntry]) -> io::Result<SnapshotReport> {
    write_snapshot_as(path, &engine_fingerprint(), entries)
}

/// [`write_snapshot`] with an explicit build fingerprint — the test seam
/// for proving stale-snapshot rejection.
pub fn write_snapshot_as(
    path: &Path,
    fingerprint: &str,
    entries: &[MemoEntry],
) -> io::Result<SnapshotReport> {
    let mut buf = Vec::with_capacity(4096);
    buf.extend_from_slice(SNAPSHOT_MAGIC);
    put_u32(&mut buf, fingerprint.len() as u32);
    buf.extend_from_slice(fingerprint.as_bytes());
    for entry in entries {
        let payload = encode_payload(entry).map_err(io::Error::other)?;
        put_u32(&mut buf, payload.len() as u32);
        put_u64(&mut buf, fnv1a_bytes(&payload));
        buf.extend_from_slice(&payload);
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let mut file = File::create(&tmp)?;
    file.write_all(&buf)?;
    file.sync_all()?;
    drop(file);
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(SnapshotReport {
            entries: entries.len(),
            bytes: buf.len(),
        }),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// A bounds-checked cursor over the snapshot bytes. Every read returns
/// `None` past the end — truncation surfaces as a typed failure, never a
/// panic or a partial parse. Shared with the journal reader.
pub(crate) struct Cursor<'a> {
    pub(crate) data: &'a [u8],
    pub(crate) at: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if n > MAX_FIELD_LEN || self.at.checked_add(n)? > self.data.len() {
            return None;
        }
        let s = &self.data[self.at..self.at + n];
        self.at += n;
        Some(s)
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    pub(crate) fn done(&self) -> bool {
        self.at == self.data.len()
    }
}

/// Decodes one record payload into an entry. `None` means the payload is
/// malformed (wrong lengths, non-utf8 fingerprint, unparsable outcome).
fn decode_payload(payload: &[u8]) -> Option<MemoEntry> {
    let mut c = Cursor {
        data: payload,
        at: 0,
    };
    let engine_len = c.u32()? as usize;
    let engine = std::str::from_utf8(c.take(engine_len)?).ok()?.to_string();
    let m = usize::try_from(c.u64()?).ok()?;
    let n_pairs = c.u32()? as usize;
    // 16 bytes per pair must fit in the remaining payload — checked before
    // the allocation, so a corrupt count cannot balloon memory.
    if n_pairs.checked_mul(16)? > payload.len() - c.at {
        return None;
    }
    let mut pairs = Vec::with_capacity(n_pairs);
    for _ in 0..n_pairs {
        let wcet = c.u64()?;
        let period = c.u64()?;
        pairs.push((wcet, period));
    }
    let outcome_len = c.u32()? as usize;
    let outcome_json = std::str::from_utf8(c.take(outcome_len)?).ok()?;
    let outcome: AnalysisOutcome = serde_json::from_str(outcome_json).ok()?;
    if !c.done() {
        return None; // trailing garbage inside a checksummed record
    }
    Some(MemoEntry {
        pairs,
        m,
        engine,
        outcome,
    })
}

/// Reads a snapshot back, verifying the build fingerprint and every
/// record checksum. See the module docs for the trust policy; the return
/// is always usable — damage degrades to a (partially) cold memo.
pub fn read_snapshot(path: &Path) -> (Vec<MemoEntry>, RestoreReport) {
    read_snapshot_as(path, &engine_fingerprint())
}

/// [`read_snapshot`] against an explicit expected fingerprint.
pub fn read_snapshot_as(path: &Path, fingerprint: &str) -> (Vec<MemoEntry>, RestoreReport) {
    let mut report = RestoreReport::default();
    let mut data = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            if f.read_to_end(&mut data).is_err() {
                report.corrupt = true;
                return (Vec::new(), report);
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            report.missing = true;
            return (Vec::new(), report);
        }
        Err(_) => {
            report.corrupt = true;
            return (Vec::new(), report);
        }
    }
    let mut c = Cursor { data: &data, at: 0 };
    let header_ok = (|| {
        let magic = c.take(SNAPSHOT_MAGIC.len())?;
        if magic != SNAPSHOT_MAGIC {
            return None;
        }
        let fp_len = c.u32()? as usize;
        let fp = std::str::from_utf8(c.take(fp_len)?).ok()?;
        (fp == fingerprint).then_some(())
    })();
    if header_ok.is_none() {
        // Wrong magic, truncated header, or a different engine build: the
        // whole file is stale — nothing in it may answer for this engine.
        report.stale = true;
        return (Vec::new(), report);
    }
    let mut entries = Vec::new();
    while !c.done() {
        let record = (|| {
            let payload_len = c.u32()? as usize;
            let checksum = c.u64()?;
            let payload = c.take(payload_len)?;
            if fnv1a_bytes(payload) != checksum {
                return None;
            }
            decode_payload(payload)
        })();
        match record {
            Some(entry) => entries.push(entry),
            None => {
                // Truncated or checksum-failing tail: keep what verified,
                // trust nothing after the damage.
                report.corrupt = true;
                break;
            }
        }
    }
    report.restored = entries.len();
    (entries, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Verdict;
    use rmts_core::Exactness;

    fn demo_entry(m: usize) -> MemoEntry {
        MemoEntry {
            pairs: vec![(1, 4), (2, 8), (4, 16)],
            m,
            engine: "RmTsLight|None|unlimited|false|3".to_string(),
            outcome: AnalysisOutcome {
                algorithm: "RM-TS/light".into(),
                m,
                verdict: Verdict::Accepted {
                    processors_used: m,
                    splits: vec![1],
                    exactness: Exactness::Exact,
                },
            },
        }
    }

    #[test]
    fn round_trips_entries_bit_identically() {
        let dir = std::env::temp_dir().join(format!("rmts_snap_rt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("memo.snap");
        let entries = vec![demo_entry(2), demo_entry(4)];
        let written = write_snapshot(&path, &entries).unwrap();
        assert_eq!(written.entries, 2);
        let (restored, report) = read_snapshot(&path);
        assert_eq!(restored, entries);
        assert_eq!(
            report,
            RestoreReport {
                restored: 2,
                ..RestoreReport::default()
            }
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_a_clean_cold_start() {
        let (entries, report) = read_snapshot(Path::new("/nonexistent/rmts/memo.snap"));
        assert!(entries.is_empty());
        assert!(report.missing && !report.stale && !report.corrupt);
    }

    #[test]
    fn foreign_fingerprint_is_stale_not_trusted() {
        let dir = std::env::temp_dir().join(format!("rmts_snap_fp_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("memo.snap");
        write_snapshot_as(&path, "rmts-engine/9.9.9/memo-fmt1", &[demo_entry(2)]).unwrap();
        let (entries, report) = read_snapshot(&path);
        assert!(entries.is_empty());
        assert!(report.stale && report.restored == 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
