//! Analysis budgets and typed analysis failures.
//!
//! Every non-trivial analysis in the workspace — the RTA fixed point, TDA
//! over scheduling points, MaxSplit probing, hyperperiod simulation — is
//! pseudo-polynomial or worse, so a hostile (or merely unlucky) input can
//! make "run the exact analysis" take arbitrarily long. An
//! [`AnalysisBudget`] lets the caller put a box around that work: a
//! wall-clock deadline, caps on fixed-point iterations and admission
//! probes, and a cap on how far a simulation may run. When the box is
//! exceeded the analysis returns a typed [`AnalysisError`] instead of
//! hanging, and budget-aware callers (the partitioner's degradation
//! ladder) can fall back to a cheaper, still-sound test.
//!
//! The budget itself is a plain value (a *spec*); arming it with
//! [`AnalysisBudget::start`] produces a [`BudgetMeter`] that carries the
//! mutable remaining-allowance state plus the absolute wall-clock deadline
//! for this particular run. Keeping the two separate means a partitioner
//! can hold a budget across calls without a stale `Instant` leaking from
//! one `partition()` invocation into the next.
//!
//! Charging is deliberately coarse-grained: iteration charges are batched
//! by the caller (one charge per fixed-point step or per block of
//! scheduling points), and the wall clock is consulted only every
//! `CLOCK_STRIDE` (256) iteration charges and on every probe charge, so
//! an unlimited meter costs a `Cell` load and a compare on the hot path.

use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::fmt;
use std::time::{Duration, Instant};

/// How many iteration charges elapse between wall-clock reads. Probe
/// charges (admission-level granularity) always read the clock.
const CLOCK_STRIDE: u32 = 256;

/// Which budget dimension ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BudgetResource {
    /// The wall-clock deadline passed.
    WallClock,
    /// The fixed-point / scheduling-point iteration cap was consumed.
    Iterations,
    /// The admission-probe cap was consumed.
    Probes,
}

impl BudgetResource {
    /// Stable short label (obs counter suffixes, degradation reasons).
    pub fn label(self) -> &'static str {
        match self {
            BudgetResource::WallClock => "wall-clock",
            BudgetResource::Iterations => "iterations",
            BudgetResource::Probes => "probes",
        }
    }
}

/// A typed analysis failure: the analysis did not produce an answer, and
/// here is exactly why. Distinct from a *negative* answer ("not
/// schedulable") — an `AnalysisError` means the question was not decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnalysisError {
    /// The [`AnalysisBudget`] was exhausted before the analysis converged.
    BudgetExhausted {
        /// The dimension that ran out.
        resource: BudgetResource,
    },
    /// An exact horizon (hyperperiod) does not fit in `u64`, so "simulate
    /// one full hyperperiod" is not a meaningful request.
    HorizonOverflow {
        /// The cap the caller would have to settle for instead.
        cap: u64,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::BudgetExhausted { resource } => {
                write!(f, "analysis budget exhausted ({})", resource.label())
            }
            AnalysisError::HorizonOverflow { cap } => {
                write!(f, "hyperperiod overflows u64; capped horizon is {cap}")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

/// A caller-set box around analysis work. `Default` is unlimited; builder
/// setters tighten individual dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnalysisBudget {
    /// Wall-clock allowance for one analysis run (one `partition()` call).
    pub deadline: Option<Duration>,
    /// Cap on fixed-point iterations / scheduling-point evaluations.
    pub max_iterations: Option<u64>,
    /// Cap on admission probes (one probe = one schedulability question).
    pub max_probes: Option<u64>,
    /// Cap on simulation horizons derived under this budget.
    pub horizon_cap: Option<u64>,
}

impl AnalysisBudget {
    /// The budget that never exhausts (identical to `Default`).
    pub fn unlimited() -> Self {
        AnalysisBudget::default()
    }

    /// True iff no dimension is capped.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_iterations.is_none()
            && self.max_probes.is_none()
            && self.horizon_cap.is_none()
    }

    /// Caps wall-clock time for one analysis run.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Caps fixed-point / scheduling-point iterations.
    pub fn with_max_iterations(mut self, n: u64) -> Self {
        self.max_iterations = Some(n);
        self
    }

    /// Caps admission probes.
    pub fn with_max_probes(mut self, n: u64) -> Self {
        self.max_probes = Some(n);
        self
    }

    /// Caps simulation horizons.
    pub fn with_horizon_cap(mut self, n: u64) -> Self {
        self.horizon_cap = Some(n);
        self
    }

    /// Arms the budget for one analysis run: fixes the absolute wall-clock
    /// deadline *now* and loads the remaining-allowance counters.
    pub fn start(&self) -> BudgetMeter {
        BudgetMeter {
            deadline: self.deadline.map(|d| Instant::now() + d),
            iters_left: Cell::new(self.max_iterations.unwrap_or(u64::MAX)),
            probes_left: Cell::new(self.max_probes.unwrap_or(u64::MAX)),
            clock_stride: Cell::new(0),
            horizon_cap: self.horizon_cap,
        }
    }
}

/// The armed, run-scoped form of an [`AnalysisBudget`]: remaining
/// allowances plus the absolute deadline. Interior mutability (`Cell`)
/// lets one meter be threaded by shared reference through deep call
/// chains; meters are per-thread by construction and are never shared
/// across threads.
#[derive(Debug)]
pub struct BudgetMeter {
    deadline: Option<Instant>,
    iters_left: Cell<u64>,
    probes_left: Cell<u64>,
    clock_stride: Cell<u32>,
    horizon_cap: Option<u64>,
}

impl BudgetMeter {
    /// A meter that never exhausts — the zero-cost default for callers
    /// that did not ask for a budget.
    pub fn unlimited() -> Self {
        AnalysisBudget::unlimited().start()
    }

    /// Charges `n` iterations (fixed-point steps, scheduling-point
    /// evaluations). Reads the wall clock only every `CLOCK_STRIDE`
    /// charges.
    pub fn charge_iterations(&self, n: u64) -> Result<(), AnalysisError> {
        let left = self.iters_left.get();
        if left < n {
            self.iters_left.set(0);
            return Err(AnalysisError::BudgetExhausted {
                resource: BudgetResource::Iterations,
            });
        }
        self.iters_left.set(left - n);
        if self.deadline.is_some() {
            let stride = self.clock_stride.get() + 1;
            if stride >= CLOCK_STRIDE {
                self.clock_stride.set(0);
                self.check_wall_clock()?;
            } else {
                self.clock_stride.set(stride);
            }
        }
        Ok(())
    }

    /// Charges one admission probe and reads the wall clock.
    pub fn charge_probe(&self) -> Result<(), AnalysisError> {
        let left = self.probes_left.get();
        if left == 0 {
            return Err(AnalysisError::BudgetExhausted {
                resource: BudgetResource::Probes,
            });
        }
        self.probes_left.set(left - 1);
        self.check_wall_clock()
    }

    /// Fails iff the wall-clock deadline has passed.
    pub fn check_wall_clock(&self) -> Result<(), AnalysisError> {
        match self.deadline {
            Some(d) if Instant::now() >= d => Err(AnalysisError::BudgetExhausted {
                resource: BudgetResource::WallClock,
            }),
            _ => Ok(()),
        }
    }

    /// The simulation-horizon cap, or `default` when uncapped.
    pub fn horizon_cap_or(&self, default: u64) -> u64 {
        self.horizon_cap.unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_meter_never_exhausts() {
        let m = BudgetMeter::unlimited();
        for _ in 0..10_000 {
            m.charge_iterations(17).unwrap();
            m.charge_probe().unwrap();
        }
        m.check_wall_clock().unwrap();
    }

    #[test]
    fn iteration_cap_is_exact() {
        let m = AnalysisBudget::unlimited().with_max_iterations(5).start();
        m.charge_iterations(3).unwrap();
        m.charge_iterations(2).unwrap();
        assert_eq!(
            m.charge_iterations(1),
            Err(AnalysisError::BudgetExhausted {
                resource: BudgetResource::Iterations
            })
        );
    }

    #[test]
    fn zero_iteration_budget_fails_first_charge() {
        let m = AnalysisBudget::unlimited().with_max_iterations(0).start();
        assert!(m.charge_iterations(1).is_err());
        // Probes remain available: the dimensions are independent.
        m.charge_probe().unwrap();
    }

    #[test]
    fn probe_cap_is_exact() {
        let m = AnalysisBudget::unlimited().with_max_probes(2).start();
        m.charge_probe().unwrap();
        m.charge_probe().unwrap();
        assert_eq!(
            m.charge_probe(),
            Err(AnalysisError::BudgetExhausted {
                resource: BudgetResource::Probes
            })
        );
        // Iterations remain available.
        m.charge_iterations(100).unwrap();
    }

    #[test]
    fn elapsed_deadline_trips_wall_clock() {
        let m = AnalysisBudget::unlimited()
            .with_deadline(Duration::from_nanos(1))
            .start();
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(
            m.check_wall_clock(),
            Err(AnalysisError::BudgetExhausted {
                resource: BudgetResource::WallClock
            })
        );
        assert!(m.charge_probe().is_err());
    }

    #[test]
    fn horizon_cap_defaults_through() {
        let m = BudgetMeter::unlimited();
        assert_eq!(m.horizon_cap_or(42), 42);
        let m = AnalysisBudget::unlimited().with_horizon_cap(7).start();
        assert_eq!(m.horizon_cap_or(42), 7);
    }

    #[test]
    fn analysis_error_display_and_serde() {
        let e = AnalysisError::BudgetExhausted {
            resource: BudgetResource::WallClock,
        };
        assert!(e.to_string().contains("wall-clock"));
        let json = serde_json::to_string(&e).unwrap();
        assert_eq!(serde_json::from_str::<AnalysisError>(&json).unwrap(), e);
        let h = AnalysisError::HorizonOverflow { cap: 9 };
        assert!(h.to_string().contains("capped horizon is 9"));
        let json = serde_json::to_string(&h).unwrap();
        assert_eq!(serde_json::from_str::<AnalysisError>(&json).unwrap(), h);
    }

    #[test]
    fn budget_spec_is_reusable_across_starts() {
        let b = AnalysisBudget::unlimited().with_max_probes(1);
        let m1 = b.start();
        m1.charge_probe().unwrap();
        assert!(m1.charge_probe().is_err());
        // A second start() re-arms the full allowance.
        let m2 = b.start();
        m2.charge_probe().unwrap();
    }
}
