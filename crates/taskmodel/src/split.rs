//! Split plans: how one task is divided into body subtasks and a tail.
//!
//! During partitioning, a task that does not fit entirely on the current
//! processor is split (paper Algorithm 2 / `MaxSplit`): the maximal feasible
//! first part stays, and the remainder moves on, possibly being split again.
//! A [`SplitPlan`] accumulates that history and produces the final
//! [`Subtask`]s with their synthetic deadlines
//! `Δ_i^k = T_i − Σ_{l∈[1,k−1]} R_i^l` (Eq. (1)).
//!
//! Body subtasks have the highest priority on their host processors
//! (Lemma 2), so their response times equal their budgets and Lemma 3 gives
//! the tail deadline `Δ_i^t = T_i − C_i^{body}`. We nevertheless record the
//! *actual* response time of each body subtask as computed by RTA on its
//! host: the general Eq. (1) with true response times is safe in every code
//! path (including RM-TS phase 3 before Lemma 11's precondition has been
//! established), and coincides with Lemma 3 whenever Lemma 2 applies.

use crate::error::ModelError;
use crate::priority::Priority;
use crate::subtask::{Subtask, SubtaskKind};
use crate::task::Task;
use crate::time::Time;
use serde::{Deserialize, Serialize};

/// One placed piece of a split task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitPart {
    /// Execution budget of this piece.
    pub budget: Time,
    /// Index of the processor hosting this piece.
    pub processor: usize,
    /// Worst-case response time of this piece on its host, as established by
    /// exact analysis at assignment time. For body subtasks under Lemma 2
    /// this equals `budget`.
    pub response: Time,
}

/// The split history of one task: zero or more body parts followed by a
/// tail part.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitPlan {
    task: Task,
    priority: Priority,
    bodies: Vec<SplitPart>,
    tail: Option<SplitPart>,
}

impl SplitPlan {
    /// Starts a plan for `task` with its global RM `priority`.
    pub fn new(task: Task, priority: Priority) -> SplitPlan {
        SplitPlan {
            task,
            priority,
            bodies: Vec::new(),
            tail: None,
        }
    }

    /// The task being split.
    #[inline]
    pub fn task(&self) -> &Task {
        &self.task
    }

    /// The parent's global RM priority.
    #[inline]
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Budget not yet placed on any processor.
    pub fn remaining(&self) -> Time {
        let placed: Time = self
            .bodies
            .iter()
            .chain(self.tail.iter())
            .map(|p| p.budget)
            .sum();
        self.task.wcet.saturating_sub(placed)
    }

    /// Sum of body budgets placed so far (`C_i^{body}` in Lemma 3's terms).
    pub fn body_budget(&self) -> Time {
        self.bodies.iter().map(|p| p.budget).sum()
    }

    /// Sum of recorded body response times (`Σ_l R_i^l`), which determines
    /// the next synthetic deadline via Eq. (1).
    pub fn body_response(&self) -> Time {
        self.bodies.iter().map(|p| p.response).sum()
    }

    /// The synthetic deadline the *next* piece would get:
    /// `Δ = T − Σ R_i^l` over the bodies placed so far.
    pub fn next_deadline(&self) -> Result<Time, ModelError> {
        self.task
            .period
            .checked_sub(self.body_response())
            .filter(|d| !d.is_zero())
            .ok_or(ModelError::SyntheticDeadlineUnderflow { id: self.task.id.0 })
    }

    /// Records a body piece. `response` is the piece's worst-case response
    /// time on its host processor (equal to `budget` under Lemma 2).
    pub fn push_body(
        &mut self,
        budget: Time,
        processor: usize,
        response: Time,
    ) -> Result<(), ModelError> {
        assert!(self.tail.is_none(), "cannot add a body after the tail");
        assert!(!budget.is_zero(), "body budget must be positive");
        assert!(
            response >= budget,
            "a response time below the budget is impossible"
        );
        if budget > self.remaining() {
            return Err(ModelError::SplitBudgetMismatch {
                id: self.task.id.0,
                parts: self.body_budget() + budget,
                whole: self.task.wcet,
            });
        }
        self.bodies.push(SplitPart {
            budget,
            processor,
            response,
        });
        // The *next* piece must still have a positive synthetic deadline.
        self.next_deadline().map(|_| ())
    }

    /// Seals the plan by placing all remaining budget as the tail on
    /// `processor`. `response` is the tail's response time on its host (may
    /// be `Time::MAX` if not yet known; it does not influence deadlines).
    pub fn seal_tail(&mut self, processor: usize, response: Time) -> Result<(), ModelError> {
        assert!(self.tail.is_none(), "tail already sealed");
        let budget = self.remaining();
        if budget.is_zero() {
            return Err(ModelError::SplitBudgetMismatch {
                id: self.task.id.0,
                parts: self.body_budget(),
                whole: self.task.wcet,
            });
        }
        self.tail = Some(SplitPart {
            budget,
            processor,
            response,
        });
        Ok(())
    }

    /// `true` once the tail is placed and all budget is accounted for.
    pub fn is_sealed(&self) -> bool {
        self.tail.is_some()
    }

    /// `true` iff the task was actually split (at least one body part).
    pub fn is_split(&self) -> bool {
        !self.bodies.is_empty()
    }

    /// Number of body parts `B`.
    pub fn body_count(&self) -> usize {
        self.bodies.len()
    }

    /// The recorded parts: bodies in order, then the tail (if sealed).
    pub fn parts(&self) -> impl Iterator<Item = &SplitPart> {
        self.bodies.iter().chain(self.tail.iter())
    }

    /// Produces the final subtasks with synthetic deadlines, paired with
    /// their host processor indices. Panics if the plan is not sealed.
    pub fn subtasks(&self) -> Vec<(Subtask, usize)> {
        let tail = self.tail.as_ref().expect("plan must be sealed");
        if self.bodies.is_empty() {
            // Never split: a single Whole subtask.
            return vec![(Subtask::whole(&self.task, self.priority), tail.processor)];
        }
        let mut out = Vec::with_capacity(self.bodies.len() + 1);
        let mut elapsed = Time::ZERO; // Σ_{l<k} R_i^l
        for (j, part) in self.bodies.iter().enumerate() {
            let deadline = self.task.period - elapsed;
            out.push((
                Subtask {
                    parent: self.task.id,
                    seq: (j + 1) as u32,
                    kind: SubtaskKind::Body((j + 1) as u32),
                    wcet: part.budget,
                    period: self.task.period,
                    deadline,
                    priority: self.priority,
                },
                part.processor,
            ));
            elapsed += part.response;
        }
        out.push((
            Subtask {
                parent: self.task.id,
                seq: (self.bodies.len() + 1) as u32,
                kind: SubtaskKind::Tail,
                wcet: tail.budget,
                period: self.task.period,
                deadline: self.task.period - elapsed,
                priority: self.priority,
            },
            tail.processor,
        ));
        out
    }

    /// Lemma 3's closed form for the tail deadline, `Δ_i^t = T_i − C_i^{body}`,
    /// valid when every body subtask has the highest priority on its host
    /// (Lemma 2). Exposed for tests and cross-checking.
    pub fn tail_deadline_lemma3(&self) -> Time {
        self.task.period.saturating_sub(self.body_budget())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskId;

    fn task() -> Task {
        Task::from_ticks(7, 6, 12).unwrap()
    }

    #[test]
    fn unsplit_task_yields_whole_subtask() {
        let mut plan = SplitPlan::new(task(), Priority(3));
        plan.seal_tail(2, Time::new(6)).unwrap();
        assert!(!plan.is_split());
        let subs = plan.subtasks();
        assert_eq!(subs.len(), 1);
        let (s, host) = subs[0];
        assert!(s.kind.is_whole());
        assert_eq!(host, 2);
        assert_eq!(s.deadline, Time::new(12));
    }

    #[test]
    fn three_way_split_matches_figure_1() {
        // τ split into body1, body2 and tail across P1, P2, P3 (Fig. 1).
        let mut plan = SplitPlan::new(task(), Priority(0));
        plan.push_body(Time::new(2), 0, Time::new(2)).unwrap();
        plan.push_body(Time::new(3), 1, Time::new(3)).unwrap();
        plan.seal_tail(2, Time::new(1)).unwrap();
        let subs = plan.subtasks();
        assert_eq!(subs.len(), 3);
        // Body 1: full period as deadline.
        assert_eq!(subs[0].0.deadline, Time::new(12));
        assert!(subs[0].0.kind.is_body());
        // Body 2: deferred by R^1 = 2.
        assert_eq!(subs[1].0.deadline, Time::new(10));
        // Tail: deferred by R^1 + R^2 = 5; budget is the remainder 1.
        assert_eq!(subs[2].0.deadline, Time::new(7));
        assert_eq!(subs[2].0.wcet, Time::new(1));
        assert!(subs[2].0.kind.is_tail());
        // Budgets add back to C.
        let total: Time = subs.iter().map(|(s, _)| s.wcet).sum();
        assert_eq!(total, Time::new(6));
    }

    #[test]
    fn lemma3_matches_eq1_when_responses_equal_budgets() {
        let mut plan = SplitPlan::new(task(), Priority(0));
        plan.push_body(Time::new(2), 0, Time::new(2)).unwrap();
        plan.push_body(Time::new(3), 1, Time::new(3)).unwrap();
        plan.seal_tail(2, Time::new(1)).unwrap();
        let tail = &plan.subtasks()[2].0;
        assert_eq!(tail.deadline, plan.tail_deadline_lemma3());
    }

    #[test]
    fn eq1_with_inflated_responses_shrinks_deadlines() {
        // If a body's response exceeded its budget (possible in RM-TS phase 3
        // corner cases), Eq. (1) must use the response, not the budget.
        let mut plan = SplitPlan::new(task(), Priority(0));
        plan.push_body(Time::new(2), 0, Time::new(5)).unwrap();
        plan.seal_tail(1, Time::new(4)).unwrap();
        let tail = &plan.subtasks()[1].0;
        assert_eq!(tail.deadline, Time::new(7)); // 12 − 5, not 12 − 2
        assert!(tail.deadline < plan.tail_deadline_lemma3());
    }

    #[test]
    fn overdraft_rejected() {
        let mut plan = SplitPlan::new(task(), Priority(0));
        let err = plan.push_body(Time::new(7), 0, Time::new(7)).unwrap_err();
        assert!(matches!(err, ModelError::SplitBudgetMismatch { id: 7, .. }));
    }

    #[test]
    fn deadline_underflow_rejected() {
        // Body responses consume the whole period: the next piece would have
        // Δ ≤ 0.
        let t = Task::from_ticks(1, 6, 8).unwrap();
        let mut plan = SplitPlan::new(t, Priority(0));
        let err = plan.push_body(Time::new(3), 0, Time::new(8)).unwrap_err();
        assert_eq!(err, ModelError::SyntheticDeadlineUnderflow { id: 1 });
    }

    #[test]
    fn remaining_tracks_budget() {
        let mut plan = SplitPlan::new(task(), Priority(0));
        assert_eq!(plan.remaining(), Time::new(6));
        plan.push_body(Time::new(2), 0, Time::new(2)).unwrap();
        assert_eq!(plan.remaining(), Time::new(4));
        plan.seal_tail(1, Time::new(4)).unwrap();
        assert_eq!(plan.remaining(), Time::ZERO);
        assert!(plan.is_sealed());
    }

    #[test]
    fn sealing_with_nothing_left_fails() {
        let mut plan = SplitPlan::new(task(), Priority(0));
        plan.push_body(Time::new(6), 0, Time::new(6)).unwrap();
        assert!(plan.seal_tail(1, Time::new(1)).is_err());
    }

    #[test]
    fn identity_flows_into_subtasks() {
        let mut plan = SplitPlan::new(task(), Priority(4));
        plan.push_body(Time::new(1), 0, Time::new(1)).unwrap();
        plan.seal_tail(1, Time::new(5)).unwrap();
        for (s, _) in plan.subtasks() {
            assert_eq!(s.parent, TaskId(7));
            assert_eq!(s.priority, Priority(4));
            assert_eq!(s.period, Time::new(12));
        }
    }
}
