//! Exact integer time.
//!
//! All worst-case execution times, periods, deadlines and response times in
//! the workspace are integral *ticks*. Exact response-time analysis iterates
//! over integers, so using a `u64` newtype (rather than `f64`) removes an
//! entire class of soundness bugs from the schedulability analysis.
//!
//! One tick has no fixed physical meaning; the convenience constructors
//! [`Time::from_ms`] / [`Time::from_us`] adopt 1 tick = 1 µs, which gives
//! comfortable headroom for the period ranges used in the paper's evaluation
//! (periods of milliseconds to seconds, hyperperiods well below `u64::MAX`).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An exact, non-negative instant or duration measured in integer ticks.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Time(pub u64);

/// Ticks per microsecond under the 1 tick = 1 µs convention.
pub const TICKS_PER_US: u64 = 1;
/// Ticks per millisecond under the 1 tick = 1 µs convention.
pub const TICKS_PER_MS: u64 = 1_000;
/// Ticks per second under the 1 tick = 1 µs convention.
pub const TICKS_PER_SEC: u64 = 1_000_000;

impl Time {
    /// The zero duration.
    pub const ZERO: Time = Time(0);
    /// The largest representable time. Used as an "unschedulable" sentinel by
    /// analyses that report response times.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from raw ticks.
    #[inline]
    pub const fn new(ticks: u64) -> Self {
        Time(ticks)
    }

    /// Creates a time from microseconds (1 tick = 1 µs).
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Time(us * TICKS_PER_US)
    }

    /// Creates a time from milliseconds (1 tick = 1 µs).
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Time(ms * TICKS_PER_MS)
    }

    /// Creates a time from seconds (1 tick = 1 µs).
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Time(s * TICKS_PER_SEC)
    }

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// `true` iff this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: `max(self − rhs, 0)`.
    #[inline]
    pub const fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition.
    #[inline]
    pub const fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub const fn checked_add(self, rhs: Time) -> Option<Time> {
        match self.0.checked_add(rhs.0) {
            Some(t) => Some(Time(t)),
            None => None,
        }
    }

    /// Checked subtraction; `None` if `rhs > self`.
    #[inline]
    pub const fn checked_sub(self, rhs: Time) -> Option<Time> {
        match self.0.checked_sub(rhs.0) {
            Some(t) => Some(Time(t)),
            None => None,
        }
    }

    /// Checked multiplication by a scalar; `None` on overflow.
    #[inline]
    pub const fn checked_mul(self, k: u64) -> Option<Time> {
        match self.0.checked_mul(k) {
            Some(t) => Some(Time(t)),
            None => None,
        }
    }

    /// Ceiling division `⌈self / rhs⌉`, the workhorse of response-time
    /// analysis (`⌈R / T_j⌉ · C_j`). Panics if `rhs` is zero.
    #[inline]
    pub const fn div_ceil(self, rhs: Time) -> u64 {
        self.0.div_ceil(rhs.0)
    }

    /// Floor division `⌊self / rhs⌋`. Panics if `rhs` is zero.
    #[inline]
    pub const fn div_floor(self, rhs: Time) -> u64 {
        self.0 / rhs.0
    }

    /// The utilization-style ratio `self / rhs` as a float. Panics if `rhs`
    /// is zero.
    #[inline]
    pub fn ratio(self, rhs: Time) -> f64 {
        assert!(rhs.0 != 0, "ratio denominator must be non-zero");
        self.0 as f64 / rhs.0 as f64
    }

    /// Minimum of two times.
    #[inline]
    pub fn min(self, rhs: Time) -> Time {
        Time(self.0.min(rhs.0))
    }

    /// Maximum of two times.
    #[inline]
    pub fn max(self, rhs: Time) -> Time {
        Time(self.0.max(rhs.0))
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, k: u64) -> Time {
        Time(self.0 * k)
    }
}

impl Mul<Time> for u64 {
    type Output = Time;
    #[inline]
    fn mul(self, t: Time) -> Time {
        Time(self * t.0)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, k: u64) -> Time {
        Time(self.0 / k)
    }
}

impl Rem<Time> for Time {
    type Output = Time;
    #[inline]
    fn rem(self, rhs: Time) -> Time {
        Time(self.0 % rhs.0)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl From<u64> for Time {
    #[inline]
    fn from(t: u64) -> Time {
        Time(t)
    }
}

impl From<Time> for u64 {
    #[inline]
    fn from(t: Time) -> u64 {
        t.0
    }
}

/// Greatest common divisor of two tick counts (binary-free Euclid; periods
/// are small enough that the classic algorithm is optimal here).
#[inline]
pub fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple, saturating at `u64::MAX` on overflow. The
/// saturation matters for hyperperiod computation on adversarial period
/// choices; callers treat `u64::MAX` as "effectively unbounded horizon".
#[inline]
pub fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        return 0;
    }
    let g = gcd(a, b);
    (a / g).saturating_mul(b)
}

/// Least common multiple, or `None` if the exact value does not fit in
/// `u64`. This is the overflow-honest sibling of [`lcm`]: horizon selection
/// must be able to *distinguish* "the hyperperiod is astronomically large"
/// from "the hyperperiod happens to be `u64::MAX`", because simulating to a
/// silently saturated bound is neither exhaustive nor finished.
#[inline]
pub fn checked_lcm(a: u64, b: u64) -> Option<u64> {
    if a == 0 || b == 0 {
        return Some(0);
    }
    let g = gcd(a, b);
    (a / g).checked_mul(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units() {
        assert_eq!(Time::from_us(3).ticks(), 3);
        assert_eq!(Time::from_ms(3).ticks(), 3_000);
        assert_eq!(Time::from_secs(2).ticks(), 2_000_000);
    }

    #[test]
    fn arithmetic_basics() {
        let a = Time::new(10);
        let b = Time::new(4);
        assert_eq!(a + b, Time::new(14));
        assert_eq!(a - b, Time::new(6));
        assert_eq!(a * 3, Time::new(30));
        assert_eq!(3 * a, Time::new(30));
        assert_eq!(a / 2, Time::new(5));
        assert_eq!(a % b, Time::new(2));
    }

    #[test]
    fn div_ceil_and_floor() {
        assert_eq!(Time::new(10).div_ceil(Time::new(4)), 3);
        assert_eq!(Time::new(8).div_ceil(Time::new(4)), 2);
        assert_eq!(Time::new(10).div_floor(Time::new(4)), 2);
        assert_eq!(Time::new(0).div_ceil(Time::new(4)), 0);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Time::new(3).saturating_sub(Time::new(5)), Time::ZERO);
        assert_eq!(Time::MAX.saturating_add(Time::new(1)), Time::MAX);
    }

    #[test]
    fn checked_ops() {
        assert_eq!(Time::new(3).checked_sub(Time::new(5)), None);
        assert_eq!(Time::new(5).checked_sub(Time::new(3)), Some(Time::new(2)));
        assert_eq!(Time::MAX.checked_add(Time::new(1)), None);
        assert_eq!(Time::MAX.checked_mul(2), None);
        assert_eq!(Time::new(4).checked_mul(3), Some(Time::new(12)));
    }

    #[test]
    fn ratio_is_exact_for_small_values() {
        assert_eq!(Time::new(1).ratio(Time::new(4)), 0.25);
        assert_eq!(Time::new(3).ratio(Time::new(4)), 0.75);
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn ratio_zero_denominator_panics() {
        let _ = Time::new(1).ratio(Time::ZERO);
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 6), 0);
        assert_eq!(lcm(u64::MAX, 2), u64::MAX); // saturates
    }

    #[test]
    fn ordering_and_minmax() {
        assert!(Time::new(3) < Time::new(4));
        assert_eq!(Time::new(3).min(Time::new(4)), Time::new(3));
        assert_eq!(Time::new(3).max(Time::new(4)), Time::new(4));
    }

    #[test]
    fn sum_over_iterator() {
        let total: Time = [1u64, 2, 3].into_iter().map(Time::new).sum();
        assert_eq!(total, Time::new(6));
    }

    #[test]
    fn display_and_serde_roundtrip() {
        assert_eq!(Time::new(42).to_string(), "42t");
        let json = serde_json::to_string(&Time::new(42)).unwrap();
        assert_eq!(json, "42");
        let back: Time = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Time::new(42));
    }
}
