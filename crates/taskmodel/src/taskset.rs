//! Rate-monotonically ordered task sets.

use crate::error::ModelError;
use crate::priority::Priority;
use crate::task::{Task, TaskId};
use crate::time::{checked_lcm, lcm, Time};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;
use std::ops::Index;

/// A set of Liu & Layland tasks, kept sorted by non-decreasing period
/// (rate-monotonic priority order, ties broken by id). The index of a task
/// in the set *is* its priority: index 0 is the highest priority, matching
/// the paper's convention that `i < j ⇒ τ_i` has higher priority than `τ_j`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "Vec<Task>", into = "Vec<Task>")]
pub struct TaskSet {
    tasks: Vec<Task>,
}

impl TaskSet {
    /// Builds a task set from tasks in any order; they are sorted into RM
    /// priority order. Fails on duplicate ids or an empty input.
    pub fn new(mut tasks: Vec<Task>) -> Result<Self, ModelError> {
        if tasks.is_empty() {
            return Err(ModelError::EmptyTaskSet);
        }
        let mut seen = HashSet::with_capacity(tasks.len());
        for t in &tasks {
            if !seen.insert(t.id) {
                return Err(ModelError::DuplicateId { id: t.id.0 });
            }
        }
        tasks.sort_by_key(|t| (t.period, t.id));
        Ok(TaskSet { tasks })
    }

    /// Rebuilds a set from tasks already in RM `(period, id)` order with
    /// unique ids, skipping the sort and the invariant re-checks. Used by
    /// the update-in-place fast path of `TaskSetDelta::apply_to`, where
    /// the keys are provably unchanged from an existing set.
    pub(crate) fn from_sorted_unchecked(tasks: Vec<Task>) -> Self {
        debug_assert!(!tasks.is_empty());
        debug_assert!(tasks
            .windows(2)
            .all(|w| (w[0].period, w[0].id) < (w[1].period, w[1].id)));
        TaskSet { tasks }
    }

    /// Convenience constructor from `(wcet, period)` tick pairs; ids are
    /// assigned from position in the input slice (before sorting).
    pub fn from_pairs(pairs: &[(u64, u64)]) -> Result<Self, ModelError> {
        let tasks = pairs
            .iter()
            .enumerate()
            .map(|(i, &(c, t))| Task::from_ticks(i as u32, c, t))
            .collect::<Result<Vec<_>, _>>()?;
        TaskSet::new(tasks)
    }

    /// Number of tasks `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` iff the set has no tasks. (Construction forbids this, so this
    /// is only ever `false`; provided for API completeness and clippy.)
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The tasks in RM priority order (highest priority first).
    #[inline]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Iterates over `(priority, task)` pairs, highest priority first.
    pub fn iter_prioritized(&self) -> impl Iterator<Item = (Priority, &Task)> {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (Priority::from(i), t))
    }

    /// The task at a given priority level.
    #[inline]
    pub fn at(&self, prio: Priority) -> &Task {
        &self.tasks[prio.index()]
    }

    /// Finds a task by id, returning its priority and the task.
    pub fn find(&self, id: TaskId) -> Option<(Priority, &Task)> {
        self.iter_prioritized().find(|(_, t)| t.id == id)
    }

    /// Total utilization `U(τ) = Σ U_i`.
    pub fn total_utilization(&self) -> f64 {
        self.tasks.iter().map(Task::utilization).sum()
    }

    /// Normalized utilization on `m` processors, `U_M(τ) = U(τ) / M`
    /// (paper Section II). Panics if `m == 0`.
    pub fn normalized_utilization(&self, m: usize) -> f64 {
        assert!(m > 0, "platform must have at least one processor");
        self.total_utilization() / m as f64
    }

    /// The largest individual task utilization `max_i U_i`.
    pub fn max_utilization(&self) -> f64 {
        self.tasks.iter().map(Task::utilization).fold(0.0, f64::max)
    }

    /// Whether every task is light with respect to `threshold` (paper
    /// Definition 1 instantiates `threshold = Θ/(1+Θ)`).
    pub fn is_light(&self, threshold: f64) -> bool {
        self.tasks.iter().all(|t| t.is_light(threshold))
    }

    /// The hyperperiod `lcm(T_1, …, T_N)`, saturating at `u64::MAX`.
    pub fn hyperperiod(&self) -> Time {
        Time::new(
            self.tasks
                .iter()
                .fold(1u64, |acc, t| lcm(acc, t.period.ticks())),
        )
    }

    /// The hyperperiod, or `None` if `lcm(T_1, …, T_N)` overflows `u64`
    /// (adversarial coprime periods). Callers that simulate "one full
    /// hyperperiod" must use this and handle overflow explicitly — the
    /// saturating [`TaskSet::hyperperiod`] cannot tell a genuine
    /// `u64::MAX`-tick hyperperiod from an overflowed one.
    pub fn checked_hyperperiod(&self) -> Option<Time> {
        self.tasks
            .iter()
            .try_fold(1u64, |acc, t| checked_lcm(acc, t.period.ticks()))
            .map(Time::new)
    }

    /// All distinct periods, ascending.
    pub fn distinct_periods(&self) -> Vec<Time> {
        let mut p: Vec<Time> = self.tasks.iter().map(|t| t.period).collect();
        p.sort_unstable();
        p.dedup();
        p
    }

    /// Removes the task with the given id, returning it. Returns `None` and
    /// leaves the set untouched if the id is absent or the set would become
    /// empty.
    pub fn remove(&mut self, id: TaskId) -> Option<Task> {
        if self.tasks.len() == 1 {
            return None;
        }
        let pos = self.tasks.iter().position(|t| t.id == id)?;
        Some(self.tasks.remove(pos))
    }

    /// A copy of the set with every execution time scaled by `factor ∈ (0,1]`
    /// (rounding down, clamping to ≥ 1 tick). Used by deflation arguments
    /// and by breakdown-utilization search.
    pub fn deflated(&self, factor: f64) -> TaskSet {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "deflation factor must be in (0, 1], got {factor}"
        );
        let tasks = self
            .tasks
            .iter()
            .map(|t| {
                let c = ((t.wcet.ticks() as f64) * factor).floor() as u64;
                t.with_wcet(Time::new(c.max(1)))
            })
            .collect();
        TaskSet { tasks }
    }

    /// A copy of the set with execution times scaled so that the total
    /// utilization becomes (approximately, by integer rounding-down)
    /// `target`. Requires `target ≤ U(τ)`.
    pub fn scaled_to_utilization(&self, target: f64) -> TaskSet {
        let current = self.total_utilization();
        assert!(
            target <= current,
            "cannot inflate: target {target} > current {current}"
        );
        self.deflated(target / current)
    }
}

impl Index<usize> for TaskSet {
    type Output = Task;
    fn index(&self, i: usize) -> &Task {
        &self.tasks[i]
    }
}

impl TryFrom<Vec<Task>> for TaskSet {
    type Error = ModelError;
    fn try_from(v: Vec<Task>) -> Result<Self, Self::Error> {
        TaskSet::new(v)
    }
}

impl From<TaskSet> for Vec<Task> {
    fn from(ts: TaskSet) -> Vec<Task> {
        ts.tasks
    }
}

impl fmt::Display for TaskSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "TaskSet (N={}, U={:.4}):",
            self.len(),
            self.total_utilization()
        )?;
        for (p, t) in self.iter_prioritized() {
            writeln!(f, "  {p}: {t}  U={:.4}", t.utilization())?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a TaskSet {
    type Item = &'a Task;
    type IntoIter = std::slice::Iter<'a, Task>;
    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> TaskSet {
        // Unsorted on purpose: periods 8, 4, 16.
        TaskSet::from_pairs(&[(2, 8), (1, 4), (4, 16)]).unwrap()
    }

    #[test]
    fn sorted_by_period() {
        let ts = demo();
        let periods: Vec<u64> = ts.tasks().iter().map(|t| t.period.ticks()).collect();
        assert_eq!(periods, vec![4, 8, 16]);
        // Index 0 (highest priority) is the shortest period.
        assert_eq!(ts.at(Priority(0)).period, Time::new(4));
    }

    #[test]
    fn ids_survive_sorting() {
        let ts = demo();
        // (1,4) was the second input so it has id 1 but priority 0.
        assert_eq!(ts.at(Priority(0)).id, TaskId(1));
        let (p, t) = ts.find(TaskId(2)).unwrap();
        assert_eq!(p, Priority(2));
        assert_eq!(t.period, Time::new(16));
    }

    #[test]
    fn period_ties_broken_by_id() {
        let ts = TaskSet::from_pairs(&[(1, 8), (1, 8), (1, 8)]).unwrap();
        let ids: Vec<u32> = ts.tasks().iter().map(|t| t.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn utilization_views() {
        let ts = demo();
        let u = ts.total_utilization();
        assert!((u - (0.25 + 0.25 + 0.25)).abs() < 1e-12);
        assert!((ts.normalized_utilization(3) - 0.25).abs() < 1e-12);
        assert!((ts.max_utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rejects_duplicates_and_empty() {
        let t0 = Task::from_ticks(0, 1, 4).unwrap();
        let t0b = Task::from_ticks(0, 2, 8).unwrap();
        assert_eq!(
            TaskSet::new(vec![t0, t0b]).unwrap_err(),
            ModelError::DuplicateId { id: 0 }
        );
        assert_eq!(TaskSet::new(vec![]).unwrap_err(), ModelError::EmptyTaskSet);
    }

    #[test]
    fn hyperperiod() {
        let ts = demo();
        assert_eq!(ts.hyperperiod(), Time::new(16));
        let ts2 = TaskSet::from_pairs(&[(1, 6), (1, 10)]).unwrap();
        assert_eq!(ts2.hyperperiod(), Time::new(30));
    }

    #[test]
    fn distinct_periods() {
        let ts = TaskSet::from_pairs(&[(1, 8), (1, 4), (1, 8)]).unwrap();
        assert_eq!(ts.distinct_periods(), vec![Time::new(4), Time::new(8)]);
    }

    #[test]
    fn light_classification() {
        let ts = demo(); // all U_i = 0.25
        assert!(ts.is_light(0.25));
        assert!(!ts.is_light(0.2));
    }

    #[test]
    fn deflation_preserves_structure() {
        let ts = TaskSet::from_pairs(&[(4, 8), (8, 16)]).unwrap();
        let d = ts.deflated(0.5);
        assert_eq!(d.len(), 2);
        assert_eq!(d.tasks()[0].wcet, Time::new(2));
        assert_eq!(d.tasks()[0].period, Time::new(8));
        assert_eq!(d.tasks()[1].wcet, Time::new(4));
    }

    #[test]
    fn deflation_clamps_to_one_tick() {
        let ts = TaskSet::from_pairs(&[(1, 100)]).unwrap();
        let d = ts.deflated(0.01);
        assert_eq!(d.tasks()[0].wcet, Time::new(1));
    }

    #[test]
    #[should_panic(expected = "deflation factor")]
    fn deflation_rejects_inflation() {
        demo().deflated(1.5);
    }

    #[test]
    fn scale_to_target_utilization() {
        let ts = TaskSet::from_pairs(&[(40, 100), (40, 100)]).unwrap(); // U = 0.8
        let s = ts.scaled_to_utilization(0.4);
        assert!((s.total_utilization() - 0.4).abs() < 0.02);
    }

    #[test]
    fn remove_keeps_nonempty_invariant() {
        let mut ts = demo();
        assert!(ts.remove(TaskId(0)).is_some());
        assert!(ts.remove(TaskId(1)).is_some());
        // Last task cannot be removed.
        assert!(ts.remove(TaskId(2)).is_none());
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn serde_roundtrip_revalidates() {
        let ts = demo();
        let json = serde_json::to_string(&ts).unwrap();
        let back: TaskSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ts);
        // Deserialization of an invalid set fails (duplicate ids).
        let bad = r#"[{"id":0,"wcet":1,"period":4},{"id":0,"wcet":1,"period":8}]"#;
        assert!(serde_json::from_str::<TaskSet>(bad).is_err());
    }

    #[test]
    fn iteration() {
        let ts = demo();
        assert_eq!((&ts).into_iter().count(), 3);
        let prios: Vec<Priority> = ts.iter_prioritized().map(|(p, _)| p).collect();
        assert_eq!(prios, vec![Priority(0), Priority(1), Priority(2)]);
    }
}
