//! # `rmts-taskmodel` — the Liu & Layland task model with task splitting
//!
//! This crate is the foundation substrate of the `rmts` workspace, which
//! reproduces *Guan, Stigge, Yi, Yu — "Parametric Utilization Bounds for
//! Fixed-Priority Multiprocessor Scheduling" (IPDPS 2012)*.
//!
//! It provides:
//!
//! * [`Time`] — exact integer time (ticks). All schedulability analysis in
//!   the workspace is performed over integers, so there are no floating-point
//!   soundness gaps.
//! * [`Task`] — a Liu & Layland (implicit-deadline, sporadic) task `⟨C, T⟩`.
//! * [`TaskSet`] — a rate-monotonically ordered collection of tasks with the
//!   utilization views used throughout the paper (`U(τ)`, `U_M(τ)`).
//! * [`Subtask`] — the pieces produced by task splitting, carrying the
//!   *synthetic deadline* `Δ_i^k = T_i − Σ_{l<k} R_i^l` of Eq. (1).
//! * [`split::SplitPlan`] — bookkeeping for a task split across processors
//!   into body subtasks and a tail subtask (paper Fig. 1).
//! * [`harmonic`] — harmonic-chain analysis (minimum chain cover of the
//!   period divisibility poset, via Hopcroft–Karp matching), needed by the
//!   harmonic-chain parametric bound `K(2^{1/K} − 1)`.
//! * [`scaled`] — scaled periods and the period ratio `r` used by the
//!   T-Bound and R-Bound of Lauzac, Melhem & Mossé.
//!
//! ## Conventions
//!
//! Tasks in a [`TaskSet`] are sorted by non-decreasing period; the index of a
//! task is its rate-monotonic priority, **index 0 being the highest
//! priority** (shortest period). The paper writes `i < j ⇒ τ_i` has higher
//! priority than `τ_j`; we keep exactly that convention.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod delta;
pub mod error;
pub mod harmonic;
pub mod priority;
pub mod scaled;
pub mod split;
pub mod subtask;
pub mod task;
pub mod taskset;
pub mod time;
pub mod transform;

pub use analysis::{AnalysisBudget, AnalysisError, BudgetMeter, BudgetResource};
pub use builder::TaskSetBuilder;
pub use delta::{DeltaError, DeltaOp, TaskSetDelta};
pub use error::ModelError;
pub use priority::Priority;
pub use split::SplitPlan;
pub use subtask::{Subtask, SubtaskKind};
pub use task::{Task, TaskId};
pub use taskset::TaskSet;
pub use time::Time;
