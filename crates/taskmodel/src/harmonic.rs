//! Harmonic-chain analysis of period sets.
//!
//! A set of periods is *harmonic* if every pair divides one another (after
//! sorting, each period divides the next). The harmonic-chain bound of Kuo &
//! Mok — `HC-Bound(τ) = K(2^{1/K} − 1)` where `K` is the number of harmonic
//! chains — needs the **minimum** number of chains covering the task set's
//! periods. Divisibility is a partial order, so by Dilworth's theorem the
//! minimum chain cover equals the maximum antichain, and because
//! divisibility is transitive it can be computed exactly as a minimum path
//! cover of the divisibility DAG: `K = n − |maximum bipartite matching|`.
//! We implement Hopcroft–Karp for the matching, which is `O(E·√V)` — ample
//! for the period counts that occur in schedulability experiments.

use crate::taskset::TaskSet;
use crate::time::Time;

/// `true` iff the period multiset is harmonic: sorted ascending, every
/// period divides the next (equivalently: any two periods divide).
pub fn is_harmonic(periods: &[Time]) -> bool {
    let mut p: Vec<u64> = periods.iter().map(|t| t.ticks()).collect();
    p.sort_unstable();
    p.windows(2).all(|w| w[0] != 0 && w[1] % w[0] == 0)
}

/// `true` iff all task periods in the set form a single harmonic chain.
pub fn taskset_is_harmonic(ts: &TaskSet) -> bool {
    is_harmonic(&ts.distinct_periods())
}

/// The result of a minimum harmonic-chain decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainCover {
    /// The chains; each chain lists distinct periods ascending, each
    /// dividing the next. Chains are sorted by their first element.
    pub chains: Vec<Vec<Time>>,
}

impl ChainCover {
    /// Number of chains `K` — the parameter of the harmonic-chain bound.
    pub fn count(&self) -> usize {
        self.chains.len()
    }
}

/// Computes a *minimum* harmonic-chain cover of the distinct periods of a
/// task set (Dilworth via Hopcroft–Karp maximum matching on the
/// divisibility DAG).
pub fn min_chain_cover(ts: &TaskSet) -> ChainCover {
    min_chain_cover_of_periods(&ts.distinct_periods())
}

/// Minimum chain cover of an explicit set of **distinct** periods.
pub fn min_chain_cover_of_periods(periods: &[Time]) -> ChainCover {
    let mut p: Vec<u64> = periods.iter().map(|t| t.ticks()).collect();
    p.sort_unstable();
    p.dedup();
    let n = p.len();
    if n == 0 {
        return ChainCover { chains: vec![] };
    }

    // adj[u] = all v (as indices) with p[u] | p[v], u ≠ v. Since the list is
    // strictly ascending, only v > u can be divisible by p[u].
    let adj: Vec<Vec<usize>> = (0..n)
        .map(|u| (u + 1..n).filter(|&v| p[v].is_multiple_of(p[u])).collect())
        .collect();

    let match_left = hopcroft_karp(n, n, &adj);

    // Extract chains: `match_left[u] = Some(v)` links u → v. Heads are
    // vertices never used as a right endpoint.
    let mut is_linked_to = vec![false; n];
    for v in match_left.iter().flatten() {
        is_linked_to[*v] = true;
    }
    let mut chains = Vec::new();
    for (head, _) in is_linked_to
        .iter()
        .enumerate()
        .filter(|&(_, &linked)| !linked)
    {
        let mut chain = Vec::new();
        let mut cur = Some(head);
        while let Some(u) = cur {
            chain.push(Time::new(p[u]));
            cur = match_left[u];
        }
        chains.push(chain);
    }
    chains.sort_by_key(|c| c[0]);
    ChainCover { chains }
}

/// Convenience: the chain count `K` for a task set.
pub fn chain_count(ts: &TaskSet) -> usize {
    min_chain_cover(ts).count()
}

/// Hopcroft–Karp maximum bipartite matching.
///
/// `adj[u]` lists the right-side neighbours of left vertex `u`. Returns, for
/// each left vertex, its matched right vertex (or `None`).
fn hopcroft_karp(n_left: usize, n_right: usize, adj: &[Vec<usize>]) -> Vec<Option<usize>> {
    const INF: u32 = u32::MAX;
    let mut match_l: Vec<Option<usize>> = vec![None; n_left];
    let mut match_r: Vec<Option<usize>> = vec![None; n_right];
    let mut dist = vec![INF; n_left];
    let mut queue = std::collections::VecDeque::with_capacity(n_left);

    loop {
        // BFS layering from free left vertices.
        queue.clear();
        let mut found_augmenting_layer = false;
        for u in 0..n_left {
            if match_l[u].is_none() {
                dist[u] = 0;
                queue.push_back(u);
            } else {
                dist[u] = INF;
            }
        }
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                match match_r[v] {
                    None => found_augmenting_layer = true,
                    Some(u2) if dist[u2] == INF => {
                        dist[u2] = dist[u] + 1;
                        queue.push_back(u2);
                    }
                    _ => {}
                }
            }
        }
        if !found_augmenting_layer {
            break;
        }
        // DFS along layered graph for vertex-disjoint augmenting paths.
        fn try_augment(
            u: usize,
            adj: &[Vec<usize>],
            dist: &mut [u32],
            match_l: &mut [Option<usize>],
            match_r: &mut [Option<usize>],
        ) -> bool {
            for i in 0..adj[u].len() {
                let v = adj[u][i];
                let ok = match match_r[v] {
                    None => true,
                    Some(u2) => {
                        dist[u2] == dist[u] + 1 && try_augment(u2, adj, dist, match_l, match_r)
                    }
                };
                if ok {
                    match_l[u] = Some(v);
                    match_r[v] = Some(u);
                    return true;
                }
            }
            dist[u] = u32::MAX;
            false
        }
        for u in 0..n_left {
            if match_l[u].is_none() && dist[u] == 0 {
                try_augment(u, adj, &mut dist, &mut match_l, &mut match_r);
            }
        }
    }
    match_l
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(v: &[u64]) -> Vec<Time> {
        v.iter().copied().map(Time::new).collect()
    }

    fn set_with_periods(periods: &[u64]) -> TaskSet {
        let pairs: Vec<(u64, u64)> = periods.iter().map(|&t| (1, t)).collect();
        TaskSet::from_pairs(&pairs).unwrap()
    }

    #[test]
    fn harmonic_detection() {
        assert!(is_harmonic(&times(&[2, 4, 8, 16])));
        assert!(is_harmonic(&times(&[5, 10, 30])));
        assert!(!is_harmonic(&times(&[4, 6])));
        assert!(is_harmonic(&times(&[7]))); // singleton
        assert!(is_harmonic(&times(&[]))); // vacuous
        assert!(is_harmonic(&times(&[8, 4, 2]))); // order-insensitive
        assert!(is_harmonic(&times(&[4, 4, 8]))); // duplicates fine
    }

    #[test]
    fn single_chain_for_harmonic_set() {
        let ts = set_with_periods(&[2, 4, 8, 16]);
        let cover = min_chain_cover(&ts);
        assert_eq!(cover.count(), 1);
        assert_eq!(cover.chains[0], times(&[2, 4, 8, 16]));
        assert!(taskset_is_harmonic(&ts));
    }

    #[test]
    fn two_interleaved_chains() {
        // {2,4,8} and {3,9,27} share no divisibility links across chains.
        let ts = set_with_periods(&[2, 4, 8, 3, 9, 27]);
        assert_eq!(chain_count(&ts), 2);
    }

    #[test]
    fn antichain_needs_one_chain_each() {
        // Pairwise non-dividing periods: the maximum antichain is the whole
        // set, so K = n.
        let ts = set_with_periods(&[4, 6, 9, 10]);
        assert_eq!(chain_count(&ts), 4);
    }

    #[test]
    fn dilworth_beats_greedy() {
        // Periods: 2, 3, 4, 12. Greedy grabbing the longest chain first
        // (2,4,12) leaves 3 alone → 2 chains; minimum is also 2 here, but
        // with 2,3,4,6,12: chains {2,4,12},{3,6}: K=2. A naive "group by
        // smallest divisor" would give 3. Verify the matching finds 2.
        let ts = set_with_periods(&[2, 3, 4, 6, 12]);
        assert_eq!(chain_count(&ts), 2);
    }

    #[test]
    fn chains_partition_the_periods() {
        let ts = set_with_periods(&[2, 3, 4, 6, 12, 5, 25, 7]);
        let cover = min_chain_cover(&ts);
        let mut all: Vec<Time> = cover.chains.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, times(&[2, 3, 4, 5, 6, 7, 12, 25]));
        // Every chain is itself harmonic.
        for chain in &cover.chains {
            assert!(is_harmonic(chain));
        }
    }

    #[test]
    fn duplicate_periods_collapse() {
        let ts = set_with_periods(&[4, 4, 4, 8]);
        assert_eq!(chain_count(&ts), 1);
    }

    #[test]
    fn figure2_task_set_is_harmonic() {
        // Paper Fig. 2: τ1 and τ2 with harmonic periods; after splitting,
        // the deadline-as-period trick yields a non-harmonic set. Here we
        // check the original set is recognized as harmonic.
        let ts = set_with_periods(&[4, 8]);
        assert!(taskset_is_harmonic(&ts));
        // Deadline 6 in place of period 8 breaks harmonicity (Section III).
        assert!(!is_harmonic(&times(&[4, 6])));
    }

    /// Brute-force maximum antichain for small period sets (Dilworth's
    /// theorem: min chain cover = max antichain).
    fn max_antichain_brute(periods: &[u64]) -> usize {
        let n = periods.len();
        assert!(n <= 16, "brute force only for small sets");
        let mut best = 0;
        for mask in 1u32..(1 << n) {
            let subset: Vec<u64> = (0..n)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| periods[i])
                .collect();
            let is_antichain = subset.iter().enumerate().all(|(i, &a)| {
                subset
                    .iter()
                    .enumerate()
                    .all(|(j, &b)| i == j || (a % b != 0 && b % a != 0))
            });
            if is_antichain {
                best = best.max(subset.len());
            }
        }
        best
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]

        /// The Hopcroft–Karp chain cover is exactly Dilworth-optimal:
        /// K equals the brute-force maximum antichain on random small sets.
        #[test]
        fn chain_cover_is_dilworth_optimal(
            raw in proptest::collection::btree_set(1u64..60, 1..9)
        ) {
            let periods: Vec<u64> = raw.into_iter().collect();
            let times: Vec<Time> = periods.iter().copied().map(Time::new).collect();
            let cover = min_chain_cover_of_periods(&times);
            let antichain = max_antichain_brute(&periods);
            proptest::prop_assert_eq!(
                cover.count(), antichain,
                "periods {:?}: cover {} ≠ antichain {}",
                periods, cover.count(), antichain
            );
            // And the cover is structurally valid.
            for chain in &cover.chains {
                proptest::prop_assert!(is_harmonic(chain));
            }
        }
    }

    #[test]
    fn large_random_cover_is_valid() {
        // Structural sanity on a bigger instance: chains are harmonic and
        // partition the set; K is at most n and at least the size of an
        // obvious antichain (primes).
        let periods: Vec<u64> = vec![
            2, 4, 8, 16, 32, 3, 9, 27, 5, 25, 7, 49, 11, 13, 6, 12, 24, 10, 20, 40,
        ];
        let ts = set_with_periods(&periods);
        let cover = min_chain_cover(&ts);
        for chain in &cover.chains {
            assert!(is_harmonic(chain));
        }
        let total: usize = cover.chains.iter().map(Vec::len).sum();
        assert_eq!(total, ts.distinct_periods().len());
        // {7,11,13,49∤...}: at least the primes 7, 11, 13 plus one of the
        // 2/3/5 chains form antichains; bound loosely.
        assert!(cover.count() >= 3);
        assert!(cover.count() <= periods.len());
    }
}
