//! Task-set deltas: the vocabulary of online workload change.
//!
//! Production schedulers field *deltas* — one task arrives, one leaves,
//! one changes its WCET — not fresh task sets. A [`TaskSetDelta`] is an
//! ordered batch of [`DeltaOp`]s applied atomically to a [`TaskSet`]:
//! either every op validates and [`TaskSetDelta::apply_to`] returns the
//! new set, or a typed [`DeltaError`] names the first op that failed and
//! the base set is left untouched (the caller still holds it unchanged).
//!
//! The delta layer is pure data: it knows nothing about partitions. The
//! incremental re-partitioning machinery (`rmts-core`'s session API)
//! consumes deltas; the wire protocol (`rmts-svc` v2 requests) and the
//! delta-stream fuzzer (`rmts-verify`) serialize them.

use crate::error::ModelError;
use crate::task::{Task, TaskId};
use crate::taskset::TaskSet;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One atomic change to a task set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeltaOp {
    /// A new task arrives. Its id must not be present.
    Add(Task),
    /// The task with this id leaves. It must be present, and removing it
    /// must not empty the set.
    Remove(TaskId),
    /// The task with this id changes parameters (same id, new `⟨C, T⟩`).
    Update(Task),
}

impl DeltaOp {
    /// The id the op concerns.
    pub fn id(&self) -> TaskId {
        match self {
            DeltaOp::Add(t) | DeltaOp::Update(t) => t.id,
            DeltaOp::Remove(id) => *id,
        }
    }
}

impl fmt::Display for DeltaOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaOp::Add(t) => write!(f, "add {t}"),
            DeltaOp::Remove(id) => write!(f, "remove {id}"),
            DeltaOp::Update(t) => write!(f, "update {t}"),
        }
    }
}

/// Why a delta failed validation against its base set. The base set is
/// never modified on failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeltaError {
    /// `Add` of an id that is already present.
    DuplicateId {
        /// The offending id.
        id: TaskId,
    },
    /// `Remove`/`Update` of an id that is not present.
    UnknownId {
        /// The offending id.
        id: TaskId,
    },
    /// `Remove` would leave the set empty.
    WouldEmpty {
        /// The id whose removal was refused.
        id: TaskId,
    },
    /// The resulting tasks violate the model (`C = 0`, `C > T`, …).
    Model(ModelError),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::DuplicateId { id } => write!(f, "add: {id} already present"),
            DeltaError::UnknownId { id } => write!(f, "no task {id} in the base set"),
            DeltaError::WouldEmpty { id } => {
                write!(f, "removing {id} would empty the task set")
            }
            DeltaError::Model(e) => write!(f, "invalid resulting task set: {e}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<ModelError> for DeltaError {
    fn from(e: ModelError) -> Self {
        DeltaError::Model(e)
    }
}

/// An ordered batch of [`DeltaOp`]s, applied atomically.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(transparent)]
pub struct TaskSetDelta {
    /// The ops, applied in order.
    pub ops: Vec<DeltaOp>,
}

impl TaskSetDelta {
    /// An empty delta (a no-op; sessions short-circuit it).
    pub fn empty() -> Self {
        TaskSetDelta::default()
    }

    /// A delta from explicit ops.
    pub fn new(ops: Vec<DeltaOp>) -> Self {
        TaskSetDelta { ops }
    }

    /// A single-op `Add` delta.
    pub fn add(task: Task) -> Self {
        TaskSetDelta::new(vec![DeltaOp::Add(task)])
    }

    /// A single-op `Remove` delta.
    pub fn remove(id: TaskId) -> Self {
        TaskSetDelta::new(vec![DeltaOp::Remove(id)])
    }

    /// A single-op `Update` delta.
    pub fn update(task: Task) -> Self {
        TaskSetDelta::new(vec![DeltaOp::Update(task)])
    }

    /// `true` iff the delta carries no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// The ids this delta touches, in op order (with duplicates when
    /// several ops address the same id).
    pub fn touched_ids(&self) -> Vec<TaskId> {
        self.ops.iter().map(DeltaOp::id).collect()
    }

    /// Applies the delta to `base`, returning the new set. Ops validate
    /// in order against the evolving intermediate state, so e.g.
    /// `Remove(3)` followed by `Add(τ3')` re-admits an id within one
    /// delta. The base set is untouched; on error nothing is returned.
    pub fn apply_to(&self, base: &TaskSet) -> Result<TaskSet, DeltaError> {
        if let Some(fast) = self.apply_updates_in_place(base) {
            return fast;
        }
        let mut tasks: Vec<Task> = base.tasks().to_vec();
        for op in &self.ops {
            match *op {
                DeltaOp::Add(t) => {
                    if tasks.iter().any(|x| x.id == t.id) {
                        return Err(DeltaError::DuplicateId { id: t.id });
                    }
                    // Re-validate the task parameters: deltas arrive from
                    // the wire, where `Task`'s construction-time checks
                    // were never run.
                    let t = Task::new(t.id.0, t.wcet, t.period)?;
                    tasks.push(t);
                }
                DeltaOp::Remove(id) => {
                    let Some(pos) = tasks.iter().position(|x| x.id == id) else {
                        return Err(DeltaError::UnknownId { id });
                    };
                    if tasks.len() == 1 {
                        return Err(DeltaError::WouldEmpty { id });
                    }
                    tasks.remove(pos);
                }
                DeltaOp::Update(t) => {
                    let Some(pos) = tasks.iter().position(|x| x.id == t.id) else {
                        return Err(DeltaError::UnknownId { id: t.id });
                    };
                    let t = Task::new(t.id.0, t.wcet, t.period)?;
                    tasks[pos] = t;
                }
            }
        }
        // `TaskSet::new` re-sorts into RM priority order and re-checks the
        // global invariants (cheap insurance; the per-op checks above make
        // a failure here unreachable).
        TaskSet::new(tasks).map_err(DeltaError::Model)
    }

    /// Fast path for WCET-only update batches: every `(period, id)` key is
    /// unchanged, so the result is the base vector with entries replaced
    /// in place — the sort is a provable no-op and the set-global
    /// invariants (unique ids, non-empty) carry over. Returns `None` when
    /// any op is not an update or changes a period; the general path
    /// handles those (and produces the identical result, since the checks
    /// here mirror its per-op validation in the same order).
    fn apply_updates_in_place(&self, base: &TaskSet) -> Option<Result<TaskSet, DeltaError>> {
        if self.ops.is_empty() || !self.ops.iter().all(|op| matches!(op, DeltaOp::Update(_))) {
            return None;
        }
        let mut tasks: Vec<Task> = base.tasks().to_vec();
        for op in &self.ops {
            let DeltaOp::Update(t) = op else {
                unreachable!()
            };
            let Some(pos) = tasks.iter().position(|x| x.id == t.id) else {
                return Some(Err(DeltaError::UnknownId { id: t.id }));
            };
            if tasks[pos].period != t.period {
                return None; // re-sort territory: general path
            }
            match Task::new(t.id.0, t.wcet, t.period) {
                Ok(t) => tasks[pos] = t,
                Err(e) => return Some(Err(e.into())),
            }
        }
        Some(Ok(TaskSet::from_sorted_unchecked(tasks)))
    }
}

impl fmt::Display for TaskSetDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "delta[")?;
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{op}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;

    fn base() -> TaskSet {
        TaskSet::from_pairs(&[(1, 4), (2, 8), (4, 16)]).unwrap()
    }

    #[test]
    fn empty_delta_is_identity() {
        let ts = base();
        let out = TaskSetDelta::empty().apply_to(&ts).unwrap();
        assert_eq!(out, ts);
        assert!(TaskSetDelta::empty().is_empty());
    }

    #[test]
    fn add_appends_and_resorts() {
        let ts = base();
        let t = Task::from_ticks(7, 1, 2).unwrap();
        let out = TaskSetDelta::add(t).apply_to(&ts).unwrap();
        assert_eq!(out.len(), 4);
        // Shortest period → highest priority after the re-sort.
        assert_eq!(out.tasks()[0].id, TaskId(7));
        // Base untouched.
        assert_eq!(ts.len(), 3);
    }

    #[test]
    fn add_duplicate_rejected() {
        let t = Task::from_ticks(1, 1, 2).unwrap();
        let err = TaskSetDelta::add(t).apply_to(&base()).unwrap_err();
        assert_eq!(err, DeltaError::DuplicateId { id: TaskId(1) });
    }

    #[test]
    fn remove_unknown_and_would_empty() {
        let err = TaskSetDelta::remove(TaskId(9))
            .apply_to(&base())
            .unwrap_err();
        assert_eq!(err, DeltaError::UnknownId { id: TaskId(9) });
        let single = TaskSet::from_pairs(&[(1, 4)]).unwrap();
        let err = TaskSetDelta::remove(TaskId(0))
            .apply_to(&single)
            .unwrap_err();
        assert_eq!(err, DeltaError::WouldEmpty { id: TaskId(0) });
    }

    #[test]
    fn update_changes_parameters_in_place() {
        let t = Task::from_ticks(1, 3, 8).unwrap();
        let out = TaskSetDelta::update(t).apply_to(&base()).unwrap();
        let (_, got) = out.find(TaskId(1)).unwrap();
        assert_eq!(got.wcet, Time::new(3));
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn update_unknown_rejected() {
        let t = Task::from_ticks(9, 1, 8).unwrap();
        let err = TaskSetDelta::update(t).apply_to(&base()).unwrap_err();
        assert_eq!(err, DeltaError::UnknownId { id: TaskId(9) });
    }

    #[test]
    fn wire_shaped_invalid_task_rejected() {
        // A `Task` value with C > T can be built field-wise (as the wire
        // does); `apply_to` must re-validate.
        let bogus = Task {
            id: TaskId(9),
            wcet: Time::new(10),
            period: Time::new(4),
        };
        let err = TaskSetDelta::add(bogus).apply_to(&base()).unwrap_err();
        assert!(matches!(err, DeltaError::Model(_)));
        let err = TaskSetDelta::new(vec![DeltaOp::Update(Task {
            id: TaskId(1),
            ..bogus
        })])
        .apply_to(&base())
        .unwrap_err();
        assert!(matches!(err, DeltaError::Model(_)));
    }

    #[test]
    fn ops_apply_in_order_against_intermediate_state() {
        // Remove then re-add the same id within one delta.
        let replacement = Task::from_ticks(1, 1, 3).unwrap();
        let delta = TaskSetDelta::new(vec![DeltaOp::Remove(TaskId(1)), DeltaOp::Add(replacement)]);
        let out = delta.apply_to(&base()).unwrap();
        assert_eq!(out.len(), 3);
        let (_, got) = out.find(TaskId(1)).unwrap();
        assert_eq!(got.period, Time::new(3));
    }

    #[test]
    fn failure_is_atomic() {
        // First op fine, second op bad → error, base unchanged, nothing
        // half-applied (apply_to works on a scratch copy).
        let ts = base();
        let delta = TaskSetDelta::new(vec![
            DeltaOp::Remove(TaskId(0)),
            DeltaOp::Remove(TaskId(42)),
        ]);
        assert!(delta.apply_to(&ts).is_err());
        assert_eq!(ts.len(), 3);
    }

    #[test]
    fn serde_round_trip() {
        let delta = TaskSetDelta::new(vec![
            DeltaOp::Add(Task::from_ticks(7, 1, 2).unwrap()),
            DeltaOp::Remove(TaskId(2)),
            DeltaOp::Update(Task::from_ticks(1, 3, 8).unwrap()),
        ]);
        let json = serde_json::to_string(&delta).unwrap();
        let back: TaskSetDelta = serde_json::from_str(&json).unwrap();
        assert_eq!(back, delta);
    }

    #[test]
    fn touched_ids_in_op_order() {
        let delta = TaskSetDelta::new(vec![
            DeltaOp::Remove(TaskId(2)),
            DeltaOp::Add(Task::from_ticks(7, 1, 2).unwrap()),
        ]);
        assert_eq!(delta.touched_ids(), vec![TaskId(2), TaskId(7)]);
        assert_eq!(delta.len(), 2);
    }

    #[test]
    fn display_is_readable() {
        let delta = TaskSetDelta::new(vec![
            DeltaOp::Remove(TaskId(2)),
            DeltaOp::Add(Task::from_ticks(7, 1, 2).unwrap()),
        ]);
        let s = delta.to_string();
        assert!(s.contains("remove τ2"));
        assert!(s.contains("add τ7"));
    }
}
