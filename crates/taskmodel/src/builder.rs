//! Fluent construction of task sets.

use crate::error::ModelError;
use crate::task::Task;
use crate::taskset::TaskSet;
use crate::time::Time;

/// A fluent builder for [`TaskSet`]s; ids are assigned in insertion order.
///
/// ```
/// use rmts_taskmodel::TaskSetBuilder;
///
/// let ts = TaskSetBuilder::new()
///     .task_ms(1, 4)   // C = 1 ms, T = 4 ms
///     .task_ms(2, 8)
///     .task_us(500, 16_000)
///     .build()
///     .unwrap();
/// assert_eq!(ts.len(), 3);
/// ```
#[derive(Debug, Default, Clone)]
pub struct TaskSetBuilder {
    tasks: Vec<Result<Task, ModelError>>,
}

impl TaskSetBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a task from raw ticks.
    #[must_use]
    pub fn task(mut self, wcet: u64, period: u64) -> Self {
        let id = self.tasks.len() as u32;
        self.tasks.push(Task::from_ticks(id, wcet, period));
        self
    }

    /// Adds a task specified in milliseconds.
    #[must_use]
    pub fn task_ms(self, wcet_ms: u64, period_ms: u64) -> Self {
        self.task_time(Time::from_ms(wcet_ms), Time::from_ms(period_ms))
    }

    /// Adds a task specified in microseconds.
    #[must_use]
    pub fn task_us(self, wcet_us: u64, period_us: u64) -> Self {
        self.task_time(Time::from_us(wcet_us), Time::from_us(period_us))
    }

    /// Adds a task from [`Time`] values.
    #[must_use]
    pub fn task_time(mut self, wcet: Time, period: Time) -> Self {
        let id = self.tasks.len() as u32;
        self.tasks.push(Task::new(id, wcet, period));
        self
    }

    /// Adds a task with utilization `u` of a given period (`C = ⌊u·T⌋`,
    /// clamped to at least 1 tick).
    #[must_use]
    pub fn task_with_utilization(self, utilization: f64, period: Time) -> Self {
        let c = ((period.ticks() as f64) * utilization).floor().max(1.0) as u64;
        self.task_time(Time::new(c), period)
    }

    /// Number of tasks added so far.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` iff no task has been added.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Finalizes the set, surfacing the first construction error if any.
    pub fn build(self) -> Result<TaskSet, ModelError> {
        let tasks = self.tasks.into_iter().collect::<Result<Vec<_>, _>>()?;
        TaskSet::new(tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_in_order() {
        let ts = TaskSetBuilder::new().task(1, 4).task(2, 8).build().unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.tasks()[0].wcet, Time::new(1));
    }

    #[test]
    fn unit_helpers() {
        let ts = TaskSetBuilder::new()
            .task_ms(1, 4)
            .task_us(500, 8_000)
            .build()
            .unwrap();
        assert_eq!(ts.tasks()[0].wcet, Time::new(1_000));
        assert_eq!(ts.tasks()[1].wcet, Time::new(500));
    }

    #[test]
    fn utilization_helper() {
        let ts = TaskSetBuilder::new()
            .task_with_utilization(0.25, Time::new(100))
            .build()
            .unwrap();
        assert_eq!(ts.tasks()[0].wcet, Time::new(25));
    }

    #[test]
    fn utilization_helper_clamps_to_one_tick() {
        let ts = TaskSetBuilder::new()
            .task_with_utilization(0.001, Time::new(100))
            .build()
            .unwrap();
        assert_eq!(ts.tasks()[0].wcet, Time::new(1));
    }

    #[test]
    fn surfaces_first_error() {
        let err = TaskSetBuilder::new()
            .task(5, 4)
            .task(1, 8)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::WcetExceedsPeriod { id: 0, .. }));
    }

    #[test]
    fn empty_builder_fails() {
        assert_eq!(
            TaskSetBuilder::new().build().unwrap_err(),
            ModelError::EmptyTaskSet
        );
        assert!(TaskSetBuilder::new().is_empty());
    }
}
