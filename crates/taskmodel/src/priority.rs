//! Rate-monotonic priorities.
//!
//! The paper sorts tasks in non-decreasing period order and uses the index as
//! the priority: `i < j` means `τ_i` has *higher* priority. We mirror that:
//! a [`Priority`] is the task's index in its RM-sorted
//! [`TaskSet`](crate::TaskSet), **smaller value = higher priority**. Period ties are
//! broken by [`TaskId`](crate::TaskId) so that orderings are deterministic
//! across runs and platforms.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A rate-monotonic priority level; smaller is more urgent.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct Priority(pub u32);

impl Priority {
    /// Highest possible priority.
    pub const HIGHEST: Priority = Priority(0);

    /// `true` iff `self` is more urgent than `other`.
    #[inline]
    pub fn is_higher_than(self, other: Priority) -> bool {
        self.0 < other.0
    }

    /// `true` iff `self` is less urgent than `other`.
    #[inline]
    pub fn is_lower_than(self, other: Priority) -> bool {
        self.0 > other.0
    }

    /// The priority's raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for Priority {
    fn from(i: usize) -> Self {
        Priority(u32::try_from(i).expect("priority index fits in u32"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_semantics() {
        let hi = Priority(0);
        let lo = Priority(5);
        assert!(hi.is_higher_than(lo));
        assert!(lo.is_lower_than(hi));
        assert!(!hi.is_higher_than(hi));
        assert!(hi < lo); // Ord agrees: smaller = higher priority sorts first
    }

    #[test]
    fn from_usize() {
        assert_eq!(Priority::from(3usize), Priority(3));
        assert_eq!(Priority::from(3usize).index(), 3);
    }

    #[test]
    fn display() {
        assert_eq!(Priority(2).to_string(), "p2");
    }
}
