//! Task-set transformations: period harmonization.
//!
//! The 100% bound for harmonic task sets creates a design incentive: if a
//! workload's periods are *almost* harmonic, a designer can **shrink**
//! periods down onto a harmonic grid (`base · 2^k`) and trade a bounded
//! utilization increase for a much larger parametric bound — frequently a
//! net capacity win. (Shrinking is the sound direction: running a task
//! *more* often than required never violates its original timing
//! requirement, whereas stretching periods would.)
//!
//! [`harmonize`] performs the transformation; [`harmonization_cost`]
//! reports the utilization inflation, which is bounded by a factor of 2
//! in the worst case (just missing a grid point) and is typically ≪ that
//! when the base is chosen with [`best_harmonization_base`].

use crate::error::ModelError;
use crate::task::Task;
use crate::taskset::TaskSet;
use crate::time::Time;

/// Rounds each period **down** to the nearest `base · 2^k` (`k ≥ 0`).
/// Execution times are unchanged, so utilizations can only grow. Fails
/// with [`ModelError::WcetExceedsPeriod`] if some task's budget no longer
/// fits in its shrunk period, and panics if `base` is zero or larger than
/// the smallest period.
pub fn harmonize(ts: &TaskSet, base: Time) -> Result<TaskSet, ModelError> {
    assert!(!base.is_zero(), "base period must be positive");
    let t_min = ts
        .tasks()
        .iter()
        .map(|t| t.period)
        .min()
        .expect("task sets are non-empty");
    assert!(
        base <= t_min,
        "base {base} exceeds the smallest period {t_min}"
    );
    let tasks = ts
        .tasks()
        .iter()
        .map(|t| {
            let shrunk = grid_floor(t.period, base);
            Task::new(t.id.0, t.wcet, shrunk)
        })
        .collect::<Result<Vec<_>, _>>()?;
    TaskSet::new(tasks)
}

/// The largest `base · 2^k ≤ period`.
fn grid_floor(period: Time, base: Time) -> Time {
    debug_assert!(base <= period);
    let mut g = base;
    while let Some(doubled) = g.checked_mul(2) {
        if doubled > period {
            break;
        }
        g = doubled;
    }
    g
}

/// The multiplicative utilization cost of harmonizing onto `base`:
/// `U(harmonize(τ)) / U(τ) ∈ [1, 2)`. Returns `None` if the
/// harmonization itself is infeasible.
pub fn harmonization_cost(ts: &TaskSet, base: Time) -> Option<f64> {
    let h = harmonize(ts, base).ok()?;
    Some(h.total_utilization() / ts.total_utilization())
}

/// Searches candidate bases (each original period divided by every power
/// of two that keeps it ≥ `min_base`) for the one minimizing utilization
/// inflation. Returns `(base, cost)`.
pub fn best_harmonization_base(ts: &TaskSet, min_base: Time) -> Option<(Time, f64)> {
    let t_min = ts.tasks().iter().map(|t| t.period).min()?;
    let mut candidates: Vec<Time> = Vec::new();
    for t in ts.tasks() {
        let mut p = t.period;
        while p >= min_base {
            if p <= t_min {
                candidates.push(p);
            }
            if p.ticks() % 2 != 0 {
                break;
            }
            p = p / 2;
        }
    }
    candidates.sort_unstable();
    candidates.dedup();
    candidates
        .into_iter()
        .filter_map(|b| harmonization_cost(ts, b).map(|c| (b, c)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harmonic::taskset_is_harmonic;
    use crate::TaskSetBuilder;

    #[test]
    fn harmonize_produces_harmonic_set() {
        let ts = TaskSetBuilder::new()
            .task(1, 10)
            .task(2, 23)
            .task(3, 47)
            .build()
            .unwrap();
        assert!(!taskset_is_harmonic(&ts));
        let h = harmonize(&ts, Time::new(10)).unwrap();
        assert!(taskset_is_harmonic(&h));
        // Periods shrank onto the grid {10, 20, 40}.
        let periods: Vec<u64> = h.tasks().iter().map(|t| t.period.ticks()).collect();
        assert_eq!(periods, vec![10, 20, 40]);
    }

    #[test]
    fn budgets_preserved_utilization_grows() {
        let ts = TaskSetBuilder::new()
            .task(2, 10)
            .task(3, 25)
            .build()
            .unwrap();
        let h = harmonize(&ts, Time::new(10)).unwrap();
        // 25 → 20: same C, higher U.
        let (_, t) = h.find(crate::TaskId(1)).unwrap();
        assert_eq!(t.wcet, Time::new(3));
        assert_eq!(t.period, Time::new(20));
        assert!(h.total_utilization() > ts.total_utilization());
        let cost = harmonization_cost(&ts, Time::new(10)).unwrap();
        assert!((cost - (h.total_utilization() / ts.total_utilization())).abs() < 1e-12);
        assert!((1.0..2.0).contains(&cost));
    }

    #[test]
    fn already_harmonic_is_free() {
        let ts = TaskSetBuilder::new()
            .task(1, 8)
            .task(1, 16)
            .build()
            .unwrap();
        let cost = harmonization_cost(&ts, Time::new(8)).unwrap();
        assert_eq!(cost, 1.0);
    }

    #[test]
    fn infeasible_shrink_detected() {
        // C = 9 with period 10: base 4 puts the grid at {4, 8}, so the
        // period shrinks to 8 < 9.
        let ts = TaskSetBuilder::new().task(9, 10).build().unwrap();
        let err = harmonize(&ts, Time::new(4)).unwrap_err();
        assert!(matches!(err, ModelError::WcetExceedsPeriod { .. }));
        assert!(harmonization_cost(&ts, Time::new(4)).is_none());
    }

    #[test]
    #[should_panic(expected = "exceeds the smallest period")]
    fn oversized_base_rejected() {
        let ts = TaskSetBuilder::new().task(1, 10).build().unwrap();
        let _ = harmonize(&ts, Time::new(11));
    }

    #[test]
    fn best_base_minimizes_cost() {
        let ts = TaskSetBuilder::new()
            .task(1, 12)
            .task(1, 25)
            .task(1, 50)
            .build()
            .unwrap();
        let (base, cost) = best_harmonization_base(&ts, Time::new(4)).unwrap();
        // Exhaustive check: no candidate base beats the reported one.
        for b in 4..=12u64 {
            if let Some(c) = harmonization_cost(&ts, Time::new(b)) {
                assert!(cost <= c + 1e-12, "base {b} beats reported {base}");
            }
        }
        let h = harmonize(&ts, base).unwrap();
        assert!(taskset_is_harmonic(&h));
    }

    #[test]
    fn grid_floor_values() {
        assert_eq!(grid_floor(Time::new(10), Time::new(10)), Time::new(10));
        assert_eq!(grid_floor(Time::new(39), Time::new(10)), Time::new(20));
        assert_eq!(grid_floor(Time::new(40), Time::new(10)), Time::new(40));
        assert_eq!(grid_floor(Time::new(41), Time::new(10)), Time::new(40));
    }
}
