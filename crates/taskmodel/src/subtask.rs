//! Subtasks produced by task splitting.
//!
//! A split task `τ_i` becomes subtasks `τ_i^1, …, τ_i^B, τ_i^t` (paper
//! Fig. 1): the *body* subtasks `τ_i^1..τ_i^B` and the *tail* subtask
//! `τ_i^t`. Each subtask is represented by the 3-tuple `⟨C_i^k, T_i, Δ_i^k⟩`
//! where the *synthetic deadline* `Δ_i^k = T_i − Σ_{l∈[1,k−1]} R_i^l`
//! (Eq. (1)) accounts for the synchronization delay inherited from its
//! predecessors on other processors. A non-split task is the degenerate
//! single subtask `τ_i^1` with `C_i^1 = C_i` and `Δ_i^1 = T_i`.

use crate::priority::Priority;
use crate::task::{Task, TaskId};
use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The role of a subtask within its parent task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SubtaskKind {
    /// The only subtask of a task that was never split.
    Whole,
    /// The `j`-th body subtask `τ_i^{b_j}` of a split task (1-based).
    Body(u32),
    /// The tail (last) subtask `τ_i^t` of a split task.
    Tail,
}

impl SubtaskKind {
    /// `true` for body subtasks.
    #[inline]
    pub fn is_body(self) -> bool {
        matches!(self, SubtaskKind::Body(_))
    }

    /// `true` for tail subtasks.
    #[inline]
    pub fn is_tail(self) -> bool {
        matches!(self, SubtaskKind::Tail)
    }

    /// `true` for whole (non-split) tasks.
    #[inline]
    pub fn is_whole(self) -> bool {
        matches!(self, SubtaskKind::Whole)
    }
}

/// A subtask `τ_i^k = ⟨C_i^k, T_i, Δ_i^k⟩` together with the identity and
/// global RM priority of its parent task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Subtask {
    /// Parent task id.
    pub parent: TaskId,
    /// 1-based position `k` in the parent's subtask chain.
    pub seq: u32,
    /// Role within the parent (whole / body / tail).
    pub kind: SubtaskKind,
    /// Execution budget `C_i^k` of this piece.
    pub wcet: Time,
    /// The parent's period `T_i` (release separation is unchanged by
    /// splitting).
    pub period: Time,
    /// The synthetic deadline `Δ_i^k ≤ T_i`.
    pub deadline: Time,
    /// The parent task's priority in the *global* RM order. Scheduling on
    /// each processor uses original priorities (paper Section IV: "tasks
    /// will be scheduled according to the RMS priority order on each
    /// processor locally, i.e., with their original priorities").
    pub priority: Priority,
}

impl Subtask {
    /// Wraps a non-split task as its own single subtask (`C^1 = C`,
    /// `Δ^1 = T`).
    pub fn whole(task: &Task, priority: Priority) -> Subtask {
        Subtask {
            parent: task.id,
            seq: 1,
            kind: SubtaskKind::Whole,
            wcet: task.wcet,
            period: task.period,
            deadline: task.period,
            priority,
        }
    }

    /// The subtask's utilization `U_i^k = C_i^k / T_i`.
    #[inline]
    pub fn utilization(&self) -> f64 {
        self.wcet.ratio(self.period)
    }

    /// The *density* `C_i^k / Δ_i^k` — utilization against the synthetic
    /// deadline. Useful for diagnostics; densities above 1 are trivially
    /// unschedulable.
    #[inline]
    pub fn density(&self) -> f64 {
        self.wcet.ratio(self.deadline)
    }

    /// `true` iff the synthetic deadline is shorter than the period, i.e.
    /// the subtask does not comply with the plain L&L model. This is
    /// exactly the complication that breaks naive reuse of parametric
    /// bounds (paper Section III, Fig. 2).
    #[inline]
    pub fn is_deadline_constrained(&self) -> bool {
        self.deadline < self.period
    }
}

impl fmt::Display for Subtask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.kind {
            SubtaskKind::Whole => String::new(),
            SubtaskKind::Body(j) => format!("^b{j}"),
            SubtaskKind::Tail => "^t".to_string(),
        };
        write!(
            f,
            "{}{tag}⟨C={}, T={}, Δ={}⟩",
            self.parent, self.wcet, self.period, self.deadline
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> Task {
        Task::from_ticks(3, 4, 10).unwrap()
    }

    #[test]
    fn whole_wraps_task() {
        let s = Subtask::whole(&task(), Priority(2));
        assert_eq!(s.parent, TaskId(3));
        assert_eq!(s.seq, 1);
        assert!(s.kind.is_whole());
        assert_eq!(s.wcet, Time::new(4));
        assert_eq!(s.deadline, Time::new(10));
        assert_eq!(s.priority, Priority(2));
        assert!(!s.is_deadline_constrained());
    }

    #[test]
    fn utilization_and_density() {
        let mut s = Subtask::whole(&task(), Priority(0));
        assert_eq!(s.utilization(), 0.4);
        assert_eq!(s.density(), 0.4);
        s.deadline = Time::new(5);
        assert_eq!(s.density(), 0.8);
        assert!(s.is_deadline_constrained());
    }

    #[test]
    fn kind_predicates() {
        assert!(SubtaskKind::Body(1).is_body());
        assert!(!SubtaskKind::Body(1).is_tail());
        assert!(SubtaskKind::Tail.is_tail());
        assert!(SubtaskKind::Whole.is_whole());
    }

    #[test]
    fn display_tags() {
        let t = task();
        let mut s = Subtask::whole(&t, Priority(0));
        assert!(s.to_string().starts_with("τ3⟨"));
        s.kind = SubtaskKind::Body(2);
        assert!(s.to_string().contains("^b2"));
        s.kind = SubtaskKind::Tail;
        assert!(s.to_string().contains("^t"));
    }
}
