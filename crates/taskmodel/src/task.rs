//! The Liu & Layland task `⟨C, T⟩`.

use crate::error::ModelError;
use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable identifier of a task, independent of its position (priority) in a
/// [`TaskSet`](crate::TaskSet). Identifiers survive sorting and splitting:
/// every subtask of `τ_i` carries `τ_i`'s id.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

/// A sporadic Liu & Layland task: worst-case execution time `C`, minimum
/// inter-release separation (period) `T`, implicit relative deadline `D = T`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Task {
    /// Stable identifier.
    pub id: TaskId,
    /// Worst-case execution time `C`.
    pub wcet: Time,
    /// Period / minimum inter-release separation `T` (also the relative
    /// deadline).
    pub period: Time,
}

impl Task {
    /// Creates a task, validating `0 < C ≤ T`.
    pub fn new(id: u32, wcet: Time, period: Time) -> Result<Self, ModelError> {
        if period.is_zero() {
            return Err(ModelError::ZeroPeriod { id });
        }
        if wcet.is_zero() {
            return Err(ModelError::ZeroWcet { id });
        }
        if wcet > period {
            return Err(ModelError::WcetExceedsPeriod { id, wcet, period });
        }
        Ok(Task {
            id: TaskId(id),
            wcet,
            period,
        })
    }

    /// Creates a task from raw tick counts, validating `0 < C ≤ T`.
    pub fn from_ticks(id: u32, wcet: u64, period: u64) -> Result<Self, ModelError> {
        Task::new(id, Time::new(wcet), Time::new(period))
    }

    /// The task's utilization `U_i = C_i / T_i ∈ (0, 1]`.
    #[inline]
    pub fn utilization(&self) -> f64 {
        self.wcet.ratio(self.period)
    }

    /// Whether the task is *light* with respect to a threshold (paper
    /// Definition 1: `U_i ≤ Θ/(1+Θ)` where `Θ` is the L&L bound of the task
    /// set). The threshold is a parameter because `Θ` depends on `N`.
    #[inline]
    pub fn is_light(&self, threshold: f64) -> bool {
        self.utilization() <= threshold
    }

    /// Whether the task is *heavy* (the complement of [`Task::is_light`]).
    #[inline]
    pub fn is_heavy(&self, threshold: f64) -> bool {
        !self.is_light(threshold)
    }

    /// Returns a copy with the execution time replaced (used by deflation
    /// arguments and by the splitting machinery). Panics in debug builds if
    /// the new budget exceeds the period.
    #[must_use]
    pub fn with_wcet(&self, wcet: Time) -> Task {
        debug_assert!(wcet <= self.period, "deflated budget must stay ≤ T");
        Task { wcet, ..*self }
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}⟨C={}, T={}⟩", self.id, self.wcet, self.period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_task() {
        let t = Task::from_ticks(1, 2, 8).unwrap();
        assert_eq!(t.utilization(), 0.25);
        assert_eq!(t.id, TaskId(1));
    }

    #[test]
    fn rejects_zero_wcet() {
        assert_eq!(
            Task::from_ticks(3, 0, 8).unwrap_err(),
            ModelError::ZeroWcet { id: 3 }
        );
    }

    #[test]
    fn rejects_zero_period() {
        assert_eq!(
            Task::from_ticks(3, 1, 0).unwrap_err(),
            ModelError::ZeroPeriod { id: 3 }
        );
    }

    #[test]
    fn rejects_over_utilization() {
        let err = Task::from_ticks(3, 9, 8).unwrap_err();
        assert!(matches!(err, ModelError::WcetExceedsPeriod { id: 3, .. }));
    }

    #[test]
    fn full_utilization_allowed() {
        let t = Task::from_ticks(0, 8, 8).unwrap();
        assert_eq!(t.utilization(), 1.0);
    }

    #[test]
    fn light_heavy_classification() {
        let t = Task::from_ticks(0, 4, 10).unwrap(); // U = 0.4
        assert!(t.is_light(0.409));
        assert!(t.is_heavy(0.39));
        // Boundary: U == threshold counts as light (Definition 1 uses ≤).
        assert!(t.is_light(0.4));
    }

    #[test]
    fn with_wcet_preserves_identity() {
        let t = Task::from_ticks(5, 4, 10).unwrap();
        let d = t.with_wcet(Time::new(2));
        assert_eq!(d.id, t.id);
        assert_eq!(d.period, t.period);
        assert_eq!(d.wcet, Time::new(2));
    }

    #[test]
    fn display_format() {
        let t = Task::from_ticks(2, 1, 4).unwrap();
        assert_eq!(t.to_string(), "τ2⟨C=1t, T=4t⟩");
    }

    #[test]
    fn serde_roundtrip() {
        let t = Task::from_ticks(2, 1, 4).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: Task = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
