//! Scaled periods for the T-Bound and R-Bound.
//!
//! Lauzac, Melhem & Mossé's parametric bounds use *scaled periods*: each
//! period is repeatedly halved until it falls into `[T_min, 2·T_min)`, where
//! `T_min` is the smallest period of the set. Formally
//! `T'_i = T_i / 2^{k_i}` with `k_i = ⌊log₂(T_i / T_min)⌋`.
//!
//! Halving a period corresponds to replacing a task by a (pessimistic)
//! double-rate variant, which preserves RM schedulability analysis; the
//! resulting bound is a deflatable PUB (paper Section III lists both T-Bound
//! and R-Bound as examples).
//!
//! To keep period comparisons exact we represent a scaled period as the
//! rational `T_i / 2^{k_i}` (numerator + shift) and compare by u128
//! cross-multiplication; floating point only enters when the bound formula
//! itself is evaluated.

use crate::taskset::TaskSet;
use crate::time::Time;
use std::cmp::Ordering;

/// A scaled period `T / 2^shift`, kept exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaledPeriod {
    /// The original period `T`.
    pub original: Time,
    /// The halving count `k` with `T / 2^k ∈ [T_min, 2·T_min)`.
    pub shift: u32,
}

impl ScaledPeriod {
    /// The scaled value as a float (for bound formulas).
    #[inline]
    pub fn value(&self) -> f64 {
        self.original.ticks() as f64 / (1u64 << self.shift) as f64
    }

    /// Exact three-way comparison of two scaled periods:
    /// `a/2^i ⋛ b/2^j ⟺ a·2^j ⋛ b·2^i`.
    pub fn cmp_exact(&self, other: &ScaledPeriod) -> Ordering {
        let lhs = (self.original.ticks() as u128) << other.shift;
        let rhs = (other.original.ticks() as u128) << self.shift;
        lhs.cmp(&rhs)
    }

    /// Exact ratio `self / other` as a float.
    pub fn ratio(&self, other: &ScaledPeriod) -> f64 {
        let num = (self.original.ticks() as u128) << other.shift;
        let den = (other.original.ticks() as u128) << self.shift;
        num as f64 / den as f64
    }
}

/// Scales every distinct period of the task set into `[T_min, 2·T_min)`.
/// The result is sorted ascending by exact scaled value; one entry per task
/// (not deduplicated), matching the `Σ_{i<N} T'_{i+1}/T'_i` sum shape of the
/// T-Bound.
pub fn scaled_periods(ts: &TaskSet) -> Vec<ScaledPeriod> {
    let t_min = ts
        .tasks()
        .iter()
        .map(|t| t.period)
        .min()
        .expect("task sets are non-empty");
    let mut out: Vec<ScaledPeriod> = ts
        .tasks()
        .iter()
        .map(|t| scale_into(t.period, t_min))
        .collect();
    out.sort_by(|a, b| a.cmp_exact(b));
    out
}

/// Scales one period into `[t_min, 2·t_min)`.
pub fn scale_into(period: Time, t_min: Time) -> ScaledPeriod {
    debug_assert!(period >= t_min, "t_min must be the smallest period");
    let p = period.ticks();
    let m = t_min.ticks();
    // Largest k with p ≥ m · 2^k  ⇔  p / 2^k ≥ m.
    let mut shift = 0u32;
    while let Some(doubled) = m.checked_shl(shift + 1) {
        if doubled == 0 || p < doubled {
            break;
        }
        shift += 1;
    }
    ScaledPeriod {
        original: period,
        shift,
    }
}

/// The ratio `r = T'_max / T'_min ∈ [1, 2)` between the largest and smallest
/// scaled period (the parameter of the R-Bound).
pub fn period_ratio(ts: &TaskSet) -> f64 {
    let scaled = scaled_periods(ts);
    let first = scaled.first().expect("non-empty");
    let last = scaled.last().expect("non-empty");
    last.ratio(first)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(periods: &[u64]) -> TaskSet {
        let pairs: Vec<(u64, u64)> = periods.iter().map(|&t| (1, t)).collect();
        TaskSet::from_pairs(&pairs).unwrap()
    }

    #[test]
    fn scaling_lands_in_octave() {
        let ts = set(&[4, 10, 9, 33]);
        for sp in scaled_periods(&ts) {
            let v = sp.value();
            assert!((4.0..8.0).contains(&v), "scaled {v} out of [4, 8)");
        }
    }

    #[test]
    fn harmonic_set_scales_to_a_point() {
        let ts = set(&[4, 8, 16, 32]);
        let scaled = scaled_periods(&ts);
        assert!(scaled.iter().all(|sp| sp.value() == 4.0));
        assert_eq!(period_ratio(&ts), 1.0);
    }

    #[test]
    fn shifts_are_floor_log2() {
        assert_eq!(scale_into(Time::new(4), Time::new(4)).shift, 0);
        assert_eq!(scale_into(Time::new(7), Time::new(4)).shift, 0);
        assert_eq!(scale_into(Time::new(8), Time::new(4)).shift, 1);
        assert_eq!(scale_into(Time::new(9), Time::new(4)).shift, 1);
        assert_eq!(scale_into(Time::new(16), Time::new(4)).shift, 2);
        assert_eq!(scale_into(Time::new(31), Time::new(4)).shift, 2);
        assert_eq!(scale_into(Time::new(32), Time::new(4)).shift, 3);
    }

    #[test]
    fn exact_comparison_avoids_float_ties() {
        // 9/2 = 4.5 vs 18/4 = 4.5: exactly equal as rationals.
        let a = ScaledPeriod {
            original: Time::new(9),
            shift: 1,
        };
        let b = ScaledPeriod {
            original: Time::new(18),
            shift: 2,
        };
        assert_eq!(a.cmp_exact(&b), Ordering::Equal);
        assert_eq!(a.ratio(&b), 1.0);
    }

    #[test]
    fn sorted_ascending() {
        let ts = set(&[4, 33, 10, 9]);
        let vals: Vec<f64> = scaled_periods(&ts)
            .iter()
            .map(ScaledPeriod::value)
            .collect();
        // 4 → 4, 9 → 4.5, 10 → 5, 33 → 4.125.
        assert_eq!(vals, vec![4.0, 4.125, 4.5, 5.0]);
    }

    #[test]
    fn ratio_is_strictly_below_two() {
        let ts = set(&[4, 7]); // r = 7/4 = 1.75
        assert_eq!(period_ratio(&ts), 1.75);
        let ts2 = set(&[4, 8]); // 8 scales to 4
        assert_eq!(period_ratio(&ts2), 1.0);
        let ts3 = set(&[5, 9, 33, 64]);
        let r = period_ratio(&ts3);
        assert!((1.0..2.0).contains(&r));
    }

    #[test]
    fn singleton() {
        let ts = set(&[17]);
        assert_eq!(period_ratio(&ts), 1.0);
        assert_eq!(scaled_periods(&ts)[0].shift, 0);
    }

    #[test]
    fn large_periods_no_overflow() {
        let ts = set(&[1_000_000, (1 << 40) + 123, 3_000_000_000]);
        for sp in scaled_periods(&ts) {
            let v = sp.value();
            assert!((1.0e6..2.0e6).contains(&v));
        }
        let r = period_ratio(&ts);
        assert!((1.0..2.0).contains(&r));
    }
}
