//! Validation errors for task-model construction.

use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised while building or validating tasks and task sets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelError {
    /// A task's worst-case execution time is zero.
    ZeroWcet {
        /// Identifier of the offending task.
        id: u32,
    },
    /// A task's period is zero.
    ZeroPeriod {
        /// Identifier of the offending task.
        id: u32,
    },
    /// A task's execution time exceeds its period, i.e. `U_i > 1`.
    WcetExceedsPeriod {
        /// Identifier of the offending task.
        id: u32,
        /// The worst-case execution time.
        wcet: Time,
        /// The period.
        period: Time,
    },
    /// Two tasks share the same identifier.
    DuplicateId {
        /// The identifier that appears more than once.
        id: u32,
    },
    /// The task set is empty where a non-empty set is required.
    EmptyTaskSet,
    /// A split budget does not add up to the original execution time.
    SplitBudgetMismatch {
        /// Identifier of the task being split.
        id: u32,
        /// Sum of subtask execution times.
        parts: Time,
        /// Original execution time.
        whole: Time,
    },
    /// A subtask's synthetic deadline would be non-positive, i.e. the body
    /// subtasks already consume the entire period (the split is infeasible).
    SyntheticDeadlineUnderflow {
        /// Identifier of the task being split.
        id: u32,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ZeroWcet { id } => write!(f, "task {id}: worst-case execution time is 0"),
            ModelError::ZeroPeriod { id } => write!(f, "task {id}: period is 0"),
            ModelError::WcetExceedsPeriod { id, wcet, period } => write!(
                f,
                "task {id}: execution time {wcet} exceeds period {period} (utilization > 1)"
            ),
            ModelError::DuplicateId { id } => write!(f, "duplicate task id {id}"),
            ModelError::EmptyTaskSet => write!(f, "task set is empty"),
            ModelError::SplitBudgetMismatch { id, parts, whole } => write!(
                f,
                "task {id}: subtask budgets sum to {parts} but the task's execution time is {whole}"
            ),
            ModelError::SyntheticDeadlineUnderflow { id } => write!(
                f,
                "task {id}: body subtasks consume the whole period; tail synthetic deadline would be ≤ 0"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ModelError::WcetExceedsPeriod {
            id: 7,
            wcet: Time::new(5),
            period: Time::new(4),
        };
        let msg = e.to_string();
        assert!(msg.contains("task 7"));
        assert!(msg.contains("5t"));
        assert!(msg.contains("4t"));
    }

    #[test]
    fn error_trait_object_safe() {
        let e: Box<dyn std::error::Error> = Box::new(ModelError::EmptyTaskSet);
        assert_eq!(e.to_string(), "task set is empty");
    }
}
