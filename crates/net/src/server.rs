//! The TCP server: one acceptor, a bounded connection pool, and a
//! per-connection serve loop speaking the `rmts-svc` JSONL protocol.
//!
//! Lifecycle: [`Server::start`] binds, restores the memo snapshot (if
//! configured and present), and spawns the acceptor. Each accepted
//! connection gets its own thread, token bucket, and response-index
//! counter, so one connection's stream is indexed exactly like a
//! `serve-batch` JSONL document. [`Server::stop`] unwinds in order:
//! stop accepting → half-close every live connection's read side (each
//! serve loop finishes its in-flight response, then sees EOF) → join →
//! drain the service behind the FIFO export barrier → write the snapshot
//! atomically. No accepted request is lost between stop and snapshot.

use crate::framing::{ErrorKind, ErrorRecord, LineEvent, LineReader};
use crate::limiter::TokenBucket;
use crate::shed::{Admission, PressureGauge, ShedPolicy};
use rmts_svc::{
    render_stream_responses, DurabilityConfig, RecoveryReport, RestoreReport, Service,
    ServiceConfig, ServiceStats, Ticket,
};
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything a [`Server`] needs to know. Chain `with_*` — the same
/// uniform-builder idiom as [`ServiceConfig`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Bind address; `"127.0.0.1:0"` picks an ephemeral port.
    pub addr: String,
    /// Connection-pool bound: further connections are answered with a
    /// typed `overloaded` error line and closed, never queued silently.
    pub max_clients: usize,
    /// Per-connection token-bucket refill rate (request lines / second).
    pub rate_per_sec: f64,
    /// Per-connection token-bucket burst capacity.
    pub burst: f64,
    /// Maximum request-line length in bytes; longer lines are answered
    /// with a typed `oversized` error and the connection is dropped.
    pub max_line_len: usize,
    /// Per-connection read timeout. `None` waits forever; a bound turns
    /// idle and slow-loris connections into clean drops.
    pub read_timeout: Option<Duration>,
    /// Sizing of the backing analysis service.
    pub service: ServiceConfig,
    /// Load-shed ladder; `None` derives one from the service's own
    /// `shards × queue_capacity` backpressure bound.
    pub shed: Option<ShedPolicy>,
    /// Memo snapshot path: restored on start (missing/stale/corrupt
    /// degrades to a cold start), written atomically on [`Server::stop`].
    pub snapshot: Option<PathBuf>,
    /// Crash durability: a journal + checkpoint directory. When set, the
    /// service recovers memo and live sessions from the newest generation
    /// on start, journals every committed session op before the response
    /// line is written to the socket, and checkpoints in the background.
    /// Takes precedence over `snapshot` for startup restore; a `snapshot`
    /// path is still honored as an extra export on [`Server::stop`].
    pub durability: Option<DurabilityConfig>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            max_clients: 32,
            rate_per_sec: 10_000.0,
            burst: 10_000.0,
            max_line_len: 1 << 20,
            read_timeout: None,
            service: ServiceConfig::default(),
            shed: None,
            snapshot: None,
            durability: None,
        }
    }
}

impl NetConfig {
    /// Defaults: loopback ephemeral port, 32 clients, a practically
    /// unlimited rate, 1 MiB lines, no read timeout, no snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the bind address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the connection-pool bound (min 1).
    pub fn with_max_clients(mut self, max_clients: usize) -> Self {
        self.max_clients = max_clients.max(1);
        self
    }

    /// Sets the per-connection rate limit: sustained `per_sec` with burst
    /// capacity `burst`.
    pub fn with_rate(mut self, per_sec: f64, burst: f64) -> Self {
        self.rate_per_sec = per_sec;
        self.burst = burst;
        self
    }

    /// Sets the maximum request-line length in bytes.
    pub fn with_max_line_len(mut self, bytes: usize) -> Self {
        self.max_line_len = bytes.max(1);
        self
    }

    /// Sets the per-connection read timeout.
    pub fn with_read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Sets the backing service's sizing.
    pub fn with_service(mut self, service: ServiceConfig) -> Self {
        self.service = service;
        self
    }

    /// Overrides the derived shed ladder.
    pub fn with_shed(mut self, shed: ShedPolicy) -> Self {
        self.shed = Some(shed);
        self
    }

    /// Sets the memo snapshot path (restore on start, write on stop).
    pub fn with_snapshot(mut self, path: impl Into<PathBuf>) -> Self {
        self.snapshot = Some(path.into());
        self
    }

    /// Enables crash durability (journal + background checkpoints) rooted
    /// at the configuration's directory.
    pub fn with_durability(mut self, durability: DurabilityConfig) -> Self {
        self.durability = Some(durability);
        self
    }
}

/// Cross-thread front-end counters (the `obs` recorders are thread-local,
/// so connection threads count here and the owner mirrors into `obs` —
/// the same pattern as `rmts-svc`'s `SharedStats`).
#[derive(Debug, Default)]
pub struct NetStats {
    accepted: AtomicU64,
    rejected: AtomicU64,
    served: AtomicU64,
    shed_degraded: AtomicU64,
    shed_overloaded: AtomicU64,
    rate_limited: AtomicU64,
    malformed: AtomicU64,
    oversized: AtomicU64,
    disconnects: AtomicU64,
}

/// A point-in-time snapshot of [`NetStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStatsSnapshot {
    /// Connections accepted into the pool.
    pub accepted: u64,
    /// Connections refused because the pool was full.
    pub rejected: u64,
    /// Requests answered with an analysis response (any rung).
    pub served: u64,
    /// Requests served through the degraded budget ladder.
    pub shed_degraded: u64,
    /// Requests refused with a typed `overloaded` line.
    pub shed_overloaded: u64,
    /// Request lines refused with a typed `rate_limited` line.
    pub rate_limited: u64,
    /// Lines answered with a typed `malformed` line.
    pub malformed: u64,
    /// Lines answered with a typed `oversized` line.
    pub oversized: u64,
    /// Connections dropped uncleanly: mid-line EOF, slow-loris timeout,
    /// or a transport error.
    pub disconnects: u64,
}

impl NetStats {
    fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            shed_degraded: self.shed_degraded.load(Ordering::Relaxed),
            shed_overloaded: self.shed_overloaded.load(Ordering::Relaxed),
            rate_limited: self.rate_limited.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            oversized: self.oversized.load(Ordering::Relaxed),
            disconnects: self.disconnects.load(Ordering::Relaxed),
        }
    }
}

impl NetStatsSnapshot {
    /// Emits the snapshot as `net.*` counters into the `obs` recording
    /// active on the calling thread (no-op without one).
    pub fn mirror_into_obs(&self) {
        rmts_obs::count("net.conn.accepted", self.accepted);
        rmts_obs::count("net.conn.rejected", self.rejected);
        rmts_obs::count("net.served", self.served);
        rmts_obs::count("net.shed", self.shed_degraded);
        rmts_obs::count("net.overloaded", self.shed_overloaded);
        rmts_obs::count("net.rate_limited", self.rate_limited);
        rmts_obs::count("net.line.malformed", self.malformed);
        rmts_obs::count("net.line.oversized", self.oversized);
        rmts_obs::count("net.disconnects", self.disconnects);
    }
}

/// Live connections: their read halves (for the stop-time half-close)
/// and their thread handles.
#[derive(Default)]
struct ConnRegistry {
    streams: Mutex<HashMap<u64, TcpStream>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    next_id: AtomicU64,
    live: AtomicUsize,
}

/// The running TCP front end (see the module docs for the lifecycle).
pub struct Server {
    addr: SocketAddr,
    svc: Arc<Service>,
    stats: Arc<NetStats>,
    restore: RestoreReport,
    recovery: Option<RecoveryReport>,
    snapshot: Option<PathBuf>,
    stopping: Arc<AtomicBool>,
    stopped: AtomicBool,
    acceptor: Mutex<Option<JoinHandle<()>>>,
    conns: Arc<ConnRegistry>,
}

impl Server {
    /// Binds, restores the snapshot (if configured), and starts accepting.
    pub fn start(cfg: NetConfig) -> io::Result<Server> {
        let (svc, restore, recovery) = match (&cfg.durability, &cfg.snapshot) {
            (Some(dcfg), _) => {
                let (svc, recovery) = Service::with_durability(cfg.service, dcfg.clone())?;
                let restore = recovery.memo;
                (svc, restore, Some(recovery))
            }
            (None, Some(path)) => {
                let (svc, report) = Service::with_restored(cfg.service, path);
                (svc, report, None)
            }
            (None, None) => (Service::new(cfg.service), RestoreReport::default(), None),
        };
        let svc = Arc::new(svc);
        let shed = cfg.shed.unwrap_or_else(|| {
            ShedPolicy::for_capacity(cfg.service.shards, cfg.service.queue_capacity)
        });
        let gauge = Arc::new(PressureGauge::new(shed));
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(NetStats::default());
        let stopping = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(ConnRegistry::default());

        let acceptor = {
            let svc = Arc::clone(&svc);
            let stats = Arc::clone(&stats);
            let stopping = Arc::clone(&stopping);
            let conns = Arc::clone(&conns);
            let cfg = cfg.clone();
            std::thread::Builder::new()
                .name("rmts-net-acceptor".to_string())
                .spawn(move || accept_loop(listener, cfg, svc, gauge, stats, stopping, conns))?
        };

        Ok(Server {
            addr,
            svc,
            stats,
            restore,
            recovery,
            snapshot: cfg.snapshot,
            stopping,
            stopped: AtomicBool::new(false),
            acceptor: Mutex::new(Some(acceptor)),
            conns,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The backing service (e.g. for comparing over-the-wire answers with
    /// in-process ones, or reading `svc.*` statistics).
    pub fn service(&self) -> &Arc<Service> {
        &self.svc
    }

    /// What the snapshot restore found at startup.
    pub fn restore_report(&self) -> &RestoreReport {
        &self.restore
    }

    /// What crash recovery found at startup: generation, memo restore,
    /// journal verification, and sessions rebuilt by replay. `None` when
    /// the server runs without [`NetConfig::durability`].
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Front-end counters so far.
    pub fn net_stats(&self) -> NetStatsSnapshot {
        self.stats.snapshot()
    }

    /// Graceful stop (see the module docs for the order). Returns the
    /// final service statistics; the snapshot write error, if any,
    /// propagates. Idempotent — a second call only re-reads statistics.
    pub fn stop(&self) -> io::Result<ServiceStats> {
        if self.stopped.swap(true, Ordering::SeqCst) {
            return Ok(self.svc.stats());
        }
        self.stopping.store(true, Ordering::SeqCst);
        // Wake the acceptor out of its blocking accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self
            .acceptor
            .lock()
            .expect("acceptor registry poisoned")
            .take()
        {
            let _ = h.join();
        }
        // Half-close every live connection: its serve loop finishes the
        // response in flight, then reads EOF and exits cleanly.
        {
            let streams = self.conns.streams.lock().expect("conn registry poisoned");
            for stream in streams.values() {
                let _ = stream.shutdown(Shutdown::Read);
            }
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut guard = self.conns.handles.lock().expect("conn registry poisoned");
            guard.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        // Every accepted request has now been answered; drain the shard
        // fleet behind the export barrier and persist the memo.
        match &self.snapshot {
            Some(path) => {
                self.svc.shutdown_with_snapshot(path)?;
            }
            None => {
                self.svc.shutdown();
            }
        }
        Ok(self.svc.stats())
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Best-effort: an unstopped server still unwinds cleanly; a
        // snapshot write failure here has nowhere to propagate.
        let _ = self.stop();
    }
}

fn accept_loop(
    listener: TcpListener,
    cfg: NetConfig,
    svc: Arc<Service>,
    gauge: Arc<PressureGauge>,
    stats: Arc<NetStats>,
    stopping: Arc<AtomicBool>,
    conns: Arc<ConnRegistry>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stopping.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stopping.load(Ordering::SeqCst) {
            return;
        }
        if conns.live.load(Ordering::Acquire) >= cfg.max_clients {
            // Refuse typed, never silently: the client learns within one
            // round-trip that the pool is full.
            stats.rejected.fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            let line = ErrorRecord::new(
                ErrorKind::Overloaded,
                format!("connection pool full ({} clients)", cfg.max_clients),
            )
            .to_line();
            let _ = stream.write_all(line.as_bytes());
            let _ = stream.write_all(b"\n");
            let _ = stream.flush();
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        stats.accepted.fetch_add(1, Ordering::Relaxed);
        conns.live.fetch_add(1, Ordering::AcqRel);
        let id = conns.next_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(read_half) = stream.try_clone() {
            conns
                .streams
                .lock()
                .expect("conn registry poisoned")
                .insert(id, read_half);
        }
        let handle = {
            let svc = Arc::clone(&svc);
            let gauge = Arc::clone(&gauge);
            let stats = Arc::clone(&stats);
            let conns = Arc::clone(&conns);
            let cfg = cfg.clone();
            std::thread::Builder::new()
                .name(format!("rmts-net-conn-{id}"))
                .spawn(move || {
                    serve_connection(stream, &cfg, &svc, &gauge, &stats);
                    conns
                        .streams
                        .lock()
                        .expect("conn registry poisoned")
                        .remove(&id);
                    conns.live.fetch_sub(1, Ordering::AcqRel);
                })
        };
        match handle {
            Ok(h) => {
                let mut guard = conns.handles.lock().expect("conn registry poisoned");
                // Reap finished threads so a long-lived server does not
                // accumulate one parked handle per past connection.
                guard.retain(|h| !h.is_finished());
                guard.push(h);
            }
            Err(_) => {
                conns
                    .streams
                    .lock()
                    .expect("conn registry poisoned")
                    .remove(&id);
                conns.live.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }
}

/// One connection's serve loop: read a line, walk
/// rate-limit → parse → shed admission, answer every line — with an
/// analysis response or a typed error — in request order.
fn serve_connection(
    stream: TcpStream,
    cfg: &NetConfig,
    svc: &Service,
    gauge: &PressureGauge,
    stats: &NetStats,
) {
    let _ = stream.set_read_timeout(cfg.read_timeout);
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = LineReader::new(stream, cfg.max_line_len);
    let mut bucket = TokenBucket::new(cfg.rate_per_sec, cfg.burst);
    // Per-connection response ordinal: this connection's stream is
    // indexed exactly like a serve-batch JSONL document.
    let mut next_index: usize = 0;
    loop {
        match reader.next_event() {
            LineEvent::Line(line) => {
                let trimmed = line.trim();
                if trimmed.is_empty() || trimmed.starts_with('#') {
                    continue;
                }
                if !bucket.try_take() {
                    stats.rate_limited.fetch_add(1, Ordering::Relaxed);
                    let rec = ErrorRecord::new(
                        ErrorKind::RateLimited,
                        format!("rate limit {}/s exceeded", cfg.rate_per_sec),
                    );
                    if write_line(&mut writer, &rec.to_line()).is_err() {
                        return;
                    }
                    continue;
                }
                let req = match rmts_svc::parse_line(&line) {
                    Ok(Some(req)) => req,
                    Ok(None) => continue,
                    Err(e) => {
                        stats.malformed.fetch_add(1, Ordering::Relaxed);
                        let rec = ErrorRecord::new(ErrorKind::Malformed, e);
                        if write_line(&mut writer, &rec.to_line()).is_err() {
                            return;
                        }
                        continue;
                    }
                };
                let admission = gauge.admit();
                if admission == Admission::Overload {
                    stats.shed_overloaded.fetch_add(1, Ordering::Relaxed);
                    let rec = ErrorRecord::new(
                        ErrorKind::Overloaded,
                        format!(
                            "{} requests in flight (bound {})",
                            gauge.in_flight(),
                            gauge.policy().overload_at
                        ),
                    );
                    if write_line(&mut writer, &rec.to_line()).is_err() {
                        return;
                    }
                    continue;
                }
                let ticket: Ticket = match req {
                    rmts_svc::Request::Analyze(req) => {
                        let req = if admission == Admission::Degrade {
                            // Rung 2: answer through the budget ladder —
                            // cheaper and *labeled* degraded, never wrong,
                            // never dropped.
                            stats.shed_degraded.fetch_add(1, Ordering::Relaxed);
                            req.with_budget(gauge.policy().degrade_budget)
                                .with_degrade(true)
                        } else {
                            req
                        };
                        svc.submit_indexed(next_index, req)
                    }
                    rmts_svc::Request::Repartition(req) => {
                        // Session ops are stateful: swapping their budget
                        // mid-stream would change the session's engine
                        // fingerprint, so they ride through unmodified.
                        svc.submit_repartition_indexed(next_index, req)
                    }
                };
                let resp = ticket.wait();
                gauge.finish();
                next_index += 1;
                stats.served.fetch_add(1, Ordering::Relaxed);
                let rendered = render_stream_responses(std::slice::from_ref(&resp));
                if writer.write_all(rendered.as_bytes()).is_err() {
                    return;
                }
                if writer.flush().is_err() {
                    return;
                }
            }
            LineEvent::Oversized => {
                // Answer typed, then drop: the connection's framing is no
                // longer trustworthy once a line blows the bound.
                stats.oversized.fetch_add(1, Ordering::Relaxed);
                let rec = ErrorRecord::new(
                    ErrorKind::Oversized,
                    format!("request line exceeds {} bytes", cfg.max_line_len),
                );
                let _ = write_line(&mut writer, &rec.to_line());
                let _ = writer.shutdown(Shutdown::Both);
                return;
            }
            LineEvent::Timeout { mid_line } => {
                // Idle or slow-loris either way: a clean, counted drop.
                if mid_line {
                    stats.disconnects.fetch_add(1, Ordering::Relaxed);
                }
                let _ = writer.shutdown(Shutdown::Both);
                return;
            }
            LineEvent::Eof { mid_line } => {
                if mid_line {
                    stats.disconnects.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
            LineEvent::Err(_) => {
                stats.disconnects.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
}

fn write_line(writer: &mut TcpStream, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmts_svc::{AlgorithmSpec, AnalyzeRequest};
    use std::io::{BufRead, BufReader};

    fn analyze_line() -> String {
        serde_json::to_string(&AnalyzeRequest::new(
            vec![(1, 4), (2, 8), (2, 8), (4, 16)],
            2,
            AlgorithmSpec::RmTsLight,
        ))
        .unwrap()
    }

    #[test]
    fn serves_a_request_over_loopback() {
        let server = Server::start(NetConfig::new()).unwrap();
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        conn.write_all(format!("{}\n", analyze_line()).as_bytes())
            .unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let rec: rmts_svc::ResponseRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(rec.index, 0);
        assert!(matches!(
            rec.outcome.verdict,
            rmts_svc::Verdict::Accepted { .. }
        ));
        drop(conn);
        let stats = server.stop().unwrap();
        assert_eq!(stats.completed, 1);
        assert_eq!(server.net_stats().served, 1);
    }

    #[test]
    fn pool_overflow_is_refused_typed() {
        let server = Server::start(NetConfig::new().with_max_clients(1)).unwrap();
        let keeper = TcpStream::connect(server.addr()).unwrap();
        // The pool admits asynchronously; wait until the first connection
        // is registered before probing the bound.
        for _ in 0..200 {
            if server.net_stats().accepted == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let extra = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(extra);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let rec: ErrorRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(rec.error, "overloaded");
        drop(keeper);
        server.stop().unwrap();
        assert_eq!(server.net_stats().rejected, 1);
    }

    #[test]
    fn rate_limit_answers_typed_and_keeps_serving() {
        let server = Server::start(NetConfig::new().with_rate(1.0, 1.0)).unwrap();
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        let line = analyze_line();
        conn.write_all(format!("{line}\n{line}\n").as_bytes())
            .unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut first = String::new();
        reader.read_line(&mut first).unwrap();
        assert!(serde_json::from_str::<rmts_svc::ResponseRecord>(&first).is_ok());
        let mut second = String::new();
        reader.read_line(&mut second).unwrap();
        let rec: ErrorRecord = serde_json::from_str(&second).unwrap();
        assert_eq!(rec.error, "rate_limited");
        drop(conn);
        server.stop().unwrap();
        assert_eq!(server.net_stats().rate_limited, 1);
    }
}
