//! # `rmts-net` — TCP front end for the analysis service
//!
//! Serves the `rmts-svc` JSONL protocol over persistent TCP connections:
//! v1 [`AnalyzeRequest`](rmts_svc::AnalyzeRequest) lines and v2
//! session operations
//! ([`RepartitionRequest`](rmts_svc::RepartitionRequest)), answered in
//! request order per connection with the same
//! [`ResponseRecord`](rmts_svc::ResponseRecord) /
//! [`SessionRecord`](rmts_svc::SessionRecord) lines `rmts-cli
//! serve-batch` writes — over-the-wire answers are bit-identical to
//! in-process ones.
//!
//! The front end is built from four small parts:
//!
//! - [`framing`]: bounded JSONL line reading (a client cannot buffer the
//!   server into the ground) and typed [`ErrorRecord`] lines — every
//!   failure is answered or cleanly dropped, never silently ignored.
//! - [`limiter`]: a per-connection token bucket; throttled clients get a
//!   typed `rate_limited` line, not a stalled socket.
//! - [`shed`]: the load ladder — degrade v1 requests through the
//!   existing `AnalysisBudget` fallback chain before refusing anything,
//!   and refuse with a typed `overloaded` line instead of queueing past
//!   the service's backpressure bound.
//! - [`server`]: one acceptor, a bounded connection pool, one thread and
//!   response-index counter per connection, and a graceful stop that
//!   drains every accepted request into an atomically written memo
//!   snapshot ([`rmts_svc::snapshot`]) for the next start to restore.
//!
//! ```no_run
//! use rmts_net::{NetConfig, Server};
//!
//! let server = Server::start(NetConfig::new().with_addr("127.0.0.1:7421")).unwrap();
//! println!("listening on {}", server.addr());
//! // ... serve ...
//! server.stop().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod framing;
pub mod limiter;
pub mod server;
pub mod shed;

pub use framing::{ErrorKind, ErrorRecord, LineEvent, LineReader};
pub use limiter::TokenBucket;
pub use server::{NetConfig, NetStats, NetStatsSnapshot, Server};
pub use shed::{Admission, PressureGauge, ShedPolicy};
