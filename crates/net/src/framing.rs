//! Bounded JSONL framing and typed wire errors.
//!
//! The protocol is newline-delimited JSON over a persistent TCP
//! connection. The reader enforces a **maximum line length** before
//! buffering (a client cannot make the server allocate unboundedly by
//! never sending a newline) and reports timeouts and half-closed sockets
//! as typed events instead of errors, so the connection loop can decide
//! deliberately: answer a typed error line, or drop the connection
//! cleanly — never panic, never hang.

use serde::{Deserialize, Serialize};
use std::io::{self, Read};

/// Classification of a protocol failure, rendered as the `error` field of
/// an [`ErrorRecord`] line. String-typed on the wire so clients can
/// switch on it without sharing Rust types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line was not a parsable v1/v2 request.
    Malformed,
    /// The line exceeded the server's maximum line length.
    Oversized,
    /// The client exceeded its per-connection token-bucket rate.
    RateLimited,
    /// The server is past its load-shedding bound (or connection pool
    /// limit) and refuses the request rather than queue it unboundedly.
    Overloaded,
}

impl ErrorKind {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Malformed => "malformed",
            ErrorKind::Oversized => "oversized",
            ErrorKind::RateLimited => "rate_limited",
            ErrorKind::Overloaded => "overloaded",
        }
    }
}

/// A typed error line: what the server writes when a request cannot be
/// served. Distinguished from success lines by the presence of the
/// `error` field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorRecord {
    /// The error class: `malformed`, `oversized`, `rate_limited`, or
    /// `overloaded`.
    pub error: String,
    /// Human-readable explanation.
    pub detail: String,
}

impl ErrorRecord {
    /// Builds a typed error line.
    pub fn new(kind: ErrorKind, detail: impl Into<String>) -> Self {
        ErrorRecord {
            error: kind.as_str().to_string(),
            detail: detail.into(),
        }
    }

    /// Serializes to one JSONL line (without the trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("error records always serialize")
    }
}

/// One framing event from a [`LineReader`].
#[derive(Debug)]
pub enum LineEvent {
    /// A complete line (newline stripped, may be empty).
    Line(String),
    /// The pending line exceeded the maximum length; the buffered prefix
    /// is discarded. The connection should answer typed and drop.
    Oversized,
    /// The read timed out. `mid_line` means a partial line was pending —
    /// a slow-loris writer — as opposed to a quietly idle connection.
    Timeout {
        /// Whether unterminated bytes were buffered when time ran out.
        mid_line: bool,
    },
    /// The peer closed (or half-closed) the connection. `mid_line` means
    /// it disconnected with an unterminated line buffered.
    Eof {
        /// Whether unterminated bytes were buffered at EOF.
        mid_line: bool,
    },
    /// A transport error (connection reset, …).
    Err(io::Error),
}

/// A line reader with a hard length bound (see the module docs).
pub struct LineReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
    /// Scan position: bytes before this offset are known newline-free.
    scanned: usize,
    max_line: usize,
}

impl<R: Read> LineReader<R> {
    /// Wraps a readable transport; lines longer than `max_line` bytes
    /// (exclusive of the newline) are rejected as [`LineEvent::Oversized`].
    pub fn new(inner: R, max_line: usize) -> Self {
        LineReader {
            inner,
            buf: Vec::new(),
            scanned: 0,
            max_line: max_line.max(1),
        }
    }

    /// Reads until one framing event is available.
    pub fn next_event(&mut self) -> LineEvent {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.buf[self.scanned..]
                .iter()
                .position(|&b| b == b'\n')
                .map(|p| p + self.scanned)
            {
                if pos > self.max_line {
                    self.buf.drain(..=pos);
                    self.scanned = 0;
                    return LineEvent::Oversized;
                }
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                self.scanned = 0;
                return LineEvent::Line(String::from_utf8_lossy(&line).into_owned());
            }
            self.scanned = self.buf.len();
            if self.buf.len() > self.max_line {
                self.buf.clear();
                self.scanned = 0;
                return LineEvent::Oversized;
            }
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    let mid_line = !self.buf.is_empty();
                    self.buf.clear();
                    self.scanned = 0;
                    return LineEvent::Eof { mid_line };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return LineEvent::Timeout {
                        mid_line: !self.buf.is_empty(),
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return LineEvent::Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_lines_and_reports_midline_eof() {
        let data: &[u8] = b"one\ntwo\r\npartial";
        let mut r = LineReader::new(data, 64);
        assert!(matches!(r.next_event(), LineEvent::Line(l) if l == "one"));
        assert!(matches!(r.next_event(), LineEvent::Line(l) if l == "two"));
        assert!(matches!(r.next_event(), LineEvent::Eof { mid_line: true }));
    }

    #[test]
    fn clean_eof_after_final_newline() {
        let data: &[u8] = b"only\n";
        let mut r = LineReader::new(data, 64);
        assert!(matches!(r.next_event(), LineEvent::Line(l) if l == "only"));
        assert!(matches!(r.next_event(), LineEvent::Eof { mid_line: false }));
    }

    #[test]
    fn oversized_lines_are_rejected_not_buffered() {
        let long = vec![b'x'; 100];
        let mut data = long.clone();
        data.push(b'\n');
        data.extend_from_slice(b"after\n");
        let mut r = LineReader::new(&data[..], 16);
        assert!(matches!(r.next_event(), LineEvent::Oversized));
        // The reader resynchronizes on the next newline boundary.
        assert!(matches!(r.next_event(), LineEvent::Line(l) if l == "after"));
    }

    #[test]
    fn oversized_without_newline_trips_the_bound() {
        let data = [b'x'; 100];
        let mut r = LineReader::new(&data[..], 16);
        assert!(matches!(r.next_event(), LineEvent::Oversized));
    }

    #[test]
    fn error_records_round_trip() {
        let rec = ErrorRecord::new(ErrorKind::RateLimited, "0.5 tokens left");
        let parsed: ErrorRecord = serde_json::from_str(&rec.to_line()).unwrap();
        assert_eq!(parsed, rec);
        assert_eq!(parsed.error, "rate_limited");
    }
}
