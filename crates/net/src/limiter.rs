//! Per-client token-bucket rate limiting.
//!
//! Each connection owns one bucket; a request line costs one token.
//! Tokens refill continuously at `per_sec` up to `burst`, so a client may
//! briefly pipeline up to `burst` requests and then sustain `per_sec`.
//! An empty bucket never blocks the connection — the server answers a
//! typed `rate_limited` error line and keeps serving, so a throttled
//! client stays connected and learns *why* it is being slowed.

use std::time::Instant;

/// A continuous-refill token bucket (see the module docs).
#[derive(Debug)]
pub struct TokenBucket {
    per_sec: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket refilling at `per_sec` tokens/second with capacity
    /// `burst` (both clamped to ≥ 1). The bucket starts full.
    pub fn new(per_sec: f64, burst: f64) -> Self {
        let per_sec = if per_sec.is_finite() {
            per_sec.max(1.0)
        } else {
            1.0
        };
        let burst = if burst.is_finite() {
            burst.max(1.0)
        } else {
            1.0
        };
        TokenBucket {
            per_sec,
            burst,
            tokens: burst,
            last: Instant::now(),
        }
    }

    /// Takes one token if available; `false` means rate-limited.
    pub fn try_take(&mut self) -> bool {
        let now = Instant::now();
        let elapsed = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.per_sec).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_is_honored_then_exhausted() {
        let mut b = TokenBucket::new(1.0, 3.0);
        assert!(b.try_take());
        assert!(b.try_take());
        assert!(b.try_take());
        // Fourth immediate take fails: the burst is spent and one second
        // has not elapsed.
        assert!(!b.try_take());
    }

    #[test]
    fn refills_over_time() {
        let mut b = TokenBucket::new(1000.0, 1.0);
        assert!(b.try_take());
        assert!(!b.try_take());
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(b.try_take(), "5 ms at 1000/s refills at least one token");
    }

    #[test]
    fn degenerate_rates_are_clamped() {
        let mut b = TokenBucket::new(0.0, 0.0);
        assert!(b.try_take(), "clamped to 1/s with burst 1, starting full");
        assert!(!b.try_take());
    }
}
