//! Load shedding: degrade before refusing, refuse before queueing.
//!
//! The server tracks requests in flight (submitted, not yet answered)
//! behind one [`PressureGauge`]. Admission has three rungs:
//!
//! 1. **Pass** — below `degrade_at`: the request runs untouched.
//! 2. **Degrade** — at or past `degrade_at`: a v1 analyze request is
//!    rewritten to walk the existing `AnalysisBudget` ladder (bounded
//!    iterations/probes with `degrade: true`), so the engine falls back
//!    exact RTA → TDA → density threshold and the client receives a
//!    *sound* answer labeled `Degraded` — visibly cheaper, never wrong,
//!    never silently dropped. Session (v2) operations are stateful and
//!    pass unmodified: changing a session's budget mid-stream would
//!    change its engine fingerprint.
//! 3. **Overload** — at or past `overload_at` (the queue bound): the
//!    request is answered immediately with a typed `overloaded` error
//!    line instead of being queued. The client knows within one
//!    round-trip; nothing times out silently, nothing is dropped on the
//!    floor.
//!
//! Degraded responses memoize under their own engine fingerprint (budget
//! and degrade flag are memo-key components), so shed-time answers can
//! never be replayed for a full-budget request.

use rmts_svc::BudgetSpec;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Where the shed ladder's rungs sit, in in-flight requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedPolicy {
    /// In-flight count at which v1 requests are degraded (rung 2).
    pub degrade_at: usize,
    /// In-flight count at which requests are refused with a typed
    /// `overloaded` line (rung 3). This is the queue bound: at most this
    /// many requests are ever waiting inside the service on the front
    /// end's behalf.
    pub overload_at: usize,
    /// The budget substituted when degrading (`degrade: true` is set
    /// alongside). Bounded iteration/probe caps — deterministic, so
    /// degraded answers stay memoizable.
    pub degrade_budget: BudgetSpec,
}

impl ShedPolicy {
    /// Derives the ladder from the service's own backpressure bound: a
    /// fleet of `shards × queue_capacity` queue slots degrades at half
    /// occupancy and refuses at full occupancy.
    pub fn for_capacity(shards: usize, queue_capacity: usize) -> Self {
        let capacity = (shards.max(1) * queue_capacity.max(1)).max(2);
        ShedPolicy {
            degrade_at: (capacity / 2).max(1),
            overload_at: capacity,
            degrade_budget: BudgetSpec {
                deadline_ms: None,
                max_iterations: Some(20_000),
                max_probes: Some(5_000),
                horizon_cap: None,
            },
        }
    }
}

/// The admission decision for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Serve untouched.
    Pass,
    /// Serve with the degraded budget ladder.
    Degrade,
    /// Refuse with a typed `overloaded` error line.
    Overload,
}

/// Shared in-flight accounting plus the policy that interprets it.
#[derive(Debug)]
pub struct PressureGauge {
    in_flight: AtomicUsize,
    policy: ShedPolicy,
}

impl PressureGauge {
    /// A gauge at zero pressure.
    pub fn new(policy: ShedPolicy) -> Self {
        PressureGauge {
            in_flight: AtomicUsize::new(0),
            policy,
        }
    }

    /// Decides admission for one request and, unless refusing, claims an
    /// in-flight slot (release with [`PressureGauge::finish`]).
    pub fn admit(&self) -> Admission {
        // Claim optimistically, then inspect the pre-claim value: the
        // claim itself serializes concurrent admitters, so `overload_at`
        // is a hard bound on concurrently admitted requests.
        let prior = self.in_flight.fetch_add(1, Ordering::AcqRel);
        if prior >= self.policy.overload_at {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            return Admission::Overload;
        }
        if prior >= self.policy.degrade_at {
            return Admission::Degrade;
        }
        Admission::Pass
    }

    /// Releases the slot claimed by a non-`Overload` admission.
    pub fn finish(&self) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }

    /// Requests currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Acquire)
    }

    /// The policy in force.
    pub fn policy(&self) -> &ShedPolicy {
        &self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_rungs_fire_in_order() {
        let gauge = PressureGauge::new(ShedPolicy {
            degrade_at: 2,
            overload_at: 4,
            degrade_budget: BudgetSpec::unlimited(),
        });
        assert_eq!(gauge.admit(), Admission::Pass); // in flight: 1
        assert_eq!(gauge.admit(), Admission::Pass); // 2
        assert_eq!(gauge.admit(), Admission::Degrade); // 3
        assert_eq!(gauge.admit(), Admission::Degrade); // 4
        assert_eq!(gauge.admit(), Admission::Overload); // refused
        assert_eq!(gauge.in_flight(), 4);
        gauge.finish();
        assert_eq!(gauge.admit(), Admission::Degrade);
    }

    #[test]
    fn derived_policy_tracks_service_capacity() {
        let p = ShedPolicy::for_capacity(4, 64);
        assert_eq!(p.degrade_at, 128);
        assert_eq!(p.overload_at, 256);
        assert!(p.degrade_budget.max_iterations.is_some());
        assert!(
            !p.degrade_budget.is_wall_clock(),
            "degraded answers must stay deterministic"
        );
    }
}
