//! Crash-recovery cost: how long a restart takes to rebuild a loaded
//! service from its journal, and the replay throughput that implies.
//!
//! Setup: a durable service takes `SESSIONS` live sessions (generated
//! task sets, `DELTAS` committed deltas each) plus a memo workload, then
//! "crashes" — dropped without a shutdown checkpoint, exactly what
//! SIGKILL leaves on disk: generation-0 journal, no memo snapshot. The
//! measured kernel is [`Service::with_durability`] on that directory —
//! journal verification plus replaying every op through the session
//! machinery.
//!
//! Correctness gate before the numbers are recorded: the recovered
//! fleet's checkpoint digest equals a no-crash control's digest
//! (bit-identical recovery), and every session is recovered.
//!
//! The report merges into `BENCH_service.json` under the `"recovery"`
//! key, next to the service and net numbers.

use rmts_bench::SEED;
use rmts_core::AlgorithmSpec;
use rmts_gen::{trial_rng, GenConfig, PeriodGen, UtilizationSpec};
use rmts_svc::{
    AnalyzeRequest, DurabilityConfig, RepartitionRequest, Request, Service, ServiceConfig,
};
use rmts_taskmodel::{Task, TaskSetDelta};
use serde::Value;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const SESSIONS: usize = 48;
const DELTAS: usize = 8;
const MEMO_SETS: usize = 64;
const RUNS: usize = 10;
const SHARDS: usize = 8;

fn quiet(dir: &PathBuf) -> DurabilityConfig {
    DurabilityConfig::new(dir)
        .with_snapshot_interval(Duration::from_secs(3600))
        .with_snapshot_every_mutations(u64::MAX)
}

fn session_base(trial: u64) -> AnalyzeRequest {
    let n = 16 + (trial % 8) as usize;
    let cfg = GenConfig::new(n, 0.55 * 4.0)
        .with_periods(PeriodGen::LogUniform {
            min: 10_000,
            max: 1_000_000,
            granularity: 10_000,
        })
        .with_utilization(UtilizationSpec::capped(0.5));
    let ts = cfg
        .generate(&mut trial_rng(SEED ^ 0x5EC0, trial))
        .expect("generator");
    let pairs: Vec<(u64, u64)> = ts
        .tasks()
        .iter()
        .map(|t| (t.wcet.ticks(), t.period.ticks()))
        .collect();
    AnalyzeRequest::new(pairs, 4, AlgorithmSpec::RmTsLight)
}

/// The full op stream: open every session, then round-robin deltas that
/// nudge task 0's WCET up and back (each one a real committed change).
fn workload() -> Vec<Request> {
    let mut reqs = Vec::new();
    let bases: Vec<AnalyzeRequest> = (0..SESSIONS as u64).map(session_base).collect();
    for (i, base) in bases.iter().enumerate() {
        reqs.push(Request::Repartition(RepartitionRequest::open(
            format!("s{i:03}"),
            base.clone(),
        )));
    }
    for round in 0..DELTAS {
        for (i, base) in bases.iter().enumerate() {
            let (w0, p0) = base.taskset[0];
            let wcet = if round % 2 == 0 { w0 + 1 } else { w0 };
            reqs.push(Request::Repartition(RepartitionRequest::delta(
                format!("s{i:03}"),
                TaskSetDelta::update(Task::from_ticks(0, wcet, p0).expect("valid task")),
            )));
        }
    }
    reqs
}

fn memo_batch() -> Vec<AnalyzeRequest> {
    (0..MEMO_SETS as u64)
        .map(|t| session_base(0x1000 + t))
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("rmts_bench_recovery_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).expect("create bench dir");
    p
}

fn main() {
    let reqs = workload();
    let memo = memo_batch();

    // Control: same stream, graceful checkpoint — the digest oracle.
    let control_dir = temp_dir("control");
    let (control, _) = Service::with_durability(
        ServiceConfig::new().with_shards(SHARDS),
        quiet(&control_dir),
    )
    .expect("control service");
    control.run_stream(reqs.clone());
    let control_digest = control
        .checkpoint()
        .expect("control checkpoint io")
        .expect("control checkpoint")
        .sessions_digest;
    drop(control);

    // The crashed directory under measurement.
    let crash_dir = temp_dir("crash");
    let journal_appends;
    {
        let (svc, _) =
            Service::with_durability(ServiceConfig::new().with_shards(SHARDS), quiet(&crash_dir))
                .expect("crash service");
        svc.run_stream(reqs.clone());
        svc.analyze_batch(memo.clone());
        journal_appends = svc
            .durability_stats()
            .expect("durable service has stats")
            .journal_appends;
        drop(svc); // crash: journal only, no checkpoint
    }
    let journal_bytes = std::fs::metadata(crash_dir.join("journal.g0.log"))
        .expect("journal exists")
        .len();

    println!(
        "recovery: {SESSIONS} sessions x {DELTAS} deltas ({journal_appends} journal ops, \
         {journal_bytes} bytes), {MEMO_SETS} memo sets lost to the crash, {SHARDS} shards"
    );

    let mut times_ns: Vec<u64> = (0..RUNS)
        .map(|run| {
            let t0 = Instant::now();
            let (svc, rec) = Service::with_durability(
                ServiceConfig::new().with_shards(SHARDS),
                quiet(&crash_dir),
            )
            .expect("recovery");
            let elapsed = t0.elapsed().as_nanos() as u64;
            assert_eq!(rec.sessions_recovered, SESSIONS, "run {run}: {rec:?}");
            assert_eq!(rec.sessions_failed, 0, "run {run}: {rec:?}");
            assert!(!rec.journal.corrupt, "run {run}: {rec:?}");
            drop(svc);
            elapsed
        })
        .collect();
    times_ns.sort_unstable();
    let median_ns = times_ns[times_ns.len() / 2];
    let ops_replayed = journal_appends as f64;
    let replay_rps = ops_replayed / (median_ns as f64 / 1e9);

    // Bit-identity gate: the recovered fleet equals the no-crash control.
    let (svc, rec) =
        Service::with_durability(ServiceConfig::new().with_shards(SHARDS), quiet(&crash_dir))
            .expect("final recovery");
    assert_eq!(rec.sessions_recovered, SESSIONS);
    let digest = svc
        .checkpoint()
        .expect("recovered checkpoint io")
        .expect("recovered checkpoint")
        .sessions_digest;
    assert_eq!(
        digest, control_digest,
        "recovered fleet must be bit-identical to the no-crash control"
    );
    drop(svc);

    println!(
        "  median recovery {:.2} ms over {RUNS} runs (min {:.2}, max {:.2}); \
         replay throughput {replay_rps:.0} ops/s; digest gate ok",
        median_ns as f64 / 1e6,
        times_ns[0] as f64 / 1e6,
        times_ns[times_ns.len() - 1] as f64 / 1e6,
    );

    let report = Value::Object(vec![
        ("bench".into(), Value::Str("recovery".into())),
        (
            "description".into(),
            Value::Str(format!(
                "journal-replay recovery of {SESSIONS} sessions x {DELTAS} committed deltas \
                 on {SHARDS} shards; median of {RUNS} cold restarts, digest-checked against \
                 a no-crash control"
            )),
        ),
        ("seed".into(), Value::UInt(SEED)),
        ("sessions".into(), Value::UInt(SESSIONS as u64)),
        ("journal_ops".into(), Value::UInt(journal_appends)),
        ("journal_bytes".into(), Value::UInt(journal_bytes)),
        ("recovery_median_ns".into(), Value::UInt(median_ns)),
        ("recovery_min_ns".into(), Value::UInt(times_ns[0])),
        (
            "recovery_max_ns".into(),
            Value::UInt(times_ns[times_ns.len() - 1]),
        ),
        ("replay_ops_per_sec".into(), Value::Float(replay_rps)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    let merged = match std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str::<Value>(&s).ok())
    {
        Some(Value::Object(fields)) => {
            let mut fields: Vec<(String, Value)> = fields
                .into_iter()
                .filter(|(k, _)| k != "recovery")
                .collect();
            fields.push(("recovery".into(), report));
            Value::Object(fields)
        }
        _ => Value::Object(vec![("recovery".into(), report)]),
    };
    std::fs::write(path, serde_json::to_string_pretty(&merged).expect("render"))
        .expect("write BENCH_service.json");
    println!("  report merged into {path} under \"recovery\"");

    let _ = std::fs::remove_dir_all(&control_dir);
    let _ = std::fs::remove_dir_all(&crash_dir);
}
