//! EXP-3 bench: harmonic light task sets — quick table (the 100%-bound
//! headline) plus timing of RM-TS/light at full load, U_M = 1.0.

use criterion::{criterion_group, criterion_main, Criterion};
use rmts_bench::{harmonic_cfg, QUICK_TRIALS, SEED};
use rmts_core::baselines::spa1;
use rmts_core::{Partitioner, RmTsLight};
use rmts_exp::acceptance::{acceptance_sweep, sweep_table};
use rmts_exp::CheckLevel;
use rmts_gen::trial_rng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let m = 4;
    let light = RmTsLight::new();
    let s1 = spa1(6 * m);
    let algs: Vec<&dyn Partitioner> = vec![&light, &s1];
    let points = acceptance_sweep(
        &algs,
        m,
        &[0.7, 0.8, 0.9, 1.0],
        QUICK_TRIALS,
        SEED,
        &harmonic_cfg(m),
        CheckLevel::Rta,
    );
    println!(
        "{}",
        sweep_table("EXP-3 (quick): harmonic light task sets, M=4", &points).to_text()
    );

    let cfg = harmonic_cfg(m)(1.0);
    let sets: Vec<_> = (0..32)
        .filter_map(|t| cfg.generate(&mut trial_rng(SEED, t)))
        .collect();
    assert!(!sets.is_empty());
    let mut group = c.benchmark_group("exp3_partition_harmonic");
    group.sample_size(20);
    group.bench_function("rmts_light_m4_u100", |b| {
        let alg = RmTsLight::new();
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % sets.len();
            black_box(alg.partition(&sets[i], m).is_ok())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
