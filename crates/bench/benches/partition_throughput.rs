//! End-to-end partition throughput: the optimized whole-set RM-TS/light
//! hot path against a reconstruction of the PR-1 baseline.
//!
//! The earlier `admission_cache` bench showed 3.7–5.8× *kernel* speedups
//! while the end-to-end `partition/8` ratio sat at 0.97× — the probe wins
//! were being refunded as cache maintenance, per-call allocation, and
//! unpruned TDA scheduling points. This bench times the whole partitioning
//! call on deep sets (n = 64–256 tasks, m = 16–64 processors) two ways:
//!
//! * `baseline_*` — the PR-1 path: scratch (uncached) admission on every
//!   probe, fresh allocations per call (`partition()` with no workspace);
//! * `optimized_*` — the current hot path: incremental `RtaCache`
//!   admission carried across processors, a recycled
//!   [`PartitionWorkspace`] (pooled processors + plan queue, allocation-
//!   free steady state), and lazily-merged, deduplicated TDA scheduling
//!   points.
//!
//! Before timing, every set is partitioned both ways and the results are
//! asserted **bit-identical** (same `Partition`, including response-time
//! bit patterns). After timing, a recorded pass checks that the reference
//! workload triggers at most `m` cache rebuilds (the cross-processor reuse
//! contract; it is 0 in practice). The geometric-mean speedup across the
//! grid is the headline, written with everything else to
//! `BENCH_partition.json`; the harness itself enforces the ≥ 1.5× CI
//! floor.

use criterion::{BenchmarkId, Criterion};
use rmts_bench::SEED;
use rmts_core::{AdmissionPolicy, Configure, PartitionWorkspace, Partitioner, RmTsLight};
use rmts_gen::{trial_rng, GenConfig, PeriodGen, UtilizationSpec};
use rmts_taskmodel::TaskSet;
use serde::Value;
use std::hint::black_box;

/// The deep-set grid: `(n, m)` points spanning the ISSUE's target range,
/// from shallow packing (n/m = 4, processors close after a handful of
/// placements) to the deepest case (n/m = 16, where per-processor
/// workloads grow long and incremental admission pays off most).
const GRID: [(usize, usize); 5] = [(64, 16), (128, 16), (256, 16), (256, 32), (256, 64)];

/// Sets per grid point (rotated through each timed iteration).
const SETS: u64 = 4;

/// EXP-1-style deep sets: log-uniform periods on the 10 ms grid,
/// unconstrained UUniFast utilizations, total utilization at 85% of
/// capacity — high enough that admission works for its verdicts, low
/// enough that most sets are accepted end-to-end.
fn deep_sets(n: usize, m: usize) -> Vec<TaskSet> {
    (0..SETS)
        .map(|trial| {
            let cfg = GenConfig::new(n, 0.85 * m as f64)
                .with_periods(PeriodGen::LogUniform {
                    min: 10_000,
                    max: 1_000_000,
                    granularity: 10_000,
                })
                .with_utilization(UtilizationSpec::any());
            cfg.generate(&mut trial_rng(
                SEED ^ 0xDEE9,
                (n as u64) << 32 | (m as u64) << 16 | trial,
            ))
            .expect("generator")
        })
        .collect()
}

/// The PR-1 reconstruction: scratch admission, no buffer reuse.
fn baseline_engine() -> RmTsLight {
    RmTsLight::new().with_policy(AdmissionPolicy::exact().uncached())
}

/// The optimized hot path: cached admission (the default policy).
fn optimized_engine() -> RmTsLight {
    RmTsLight::new()
}

fn bench(c: &mut Criterion) -> u64 {
    // Bit-identity gate: on every grid set, the optimized path (cached
    // admission + recycled workspace) must reproduce the baseline's
    // partition exactly — accepted or rejected.
    let mut ws = PartitionWorkspace::new();
    for &(n, m) in &GRID {
        for (i, ts) in deep_sets(n, m).iter().enumerate() {
            let base = baseline_engine().partition(ts, m);
            let opt = optimized_engine().partition_with(ts, m, &mut ws);
            match (base, opt) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a, b, "n={n} m={m} set {i}: partitions diverge");
                    ws.recycle(b);
                }
                (Err(a), Err(b)) => {
                    assert_eq!(*a, *b, "n={n} m={m} set {i}: rejects diverge");
                    ws.recycle(b.partial);
                }
                (a, b) => panic!(
                    "n={n} m={m} set {i}: verdicts diverge (baseline ok={}, optimized ok={})",
                    a.is_ok(),
                    b.is_ok()
                ),
            }
        }
    }
    println!("partition_throughput: optimized ≡ baseline on the whole grid; timing\n");

    let mut group = c.benchmark_group("partition_throughput");
    group.sample_size(50);
    for &(n, m) in &GRID {
        let sets = deep_sets(n, m);
        let param = format!("{n}x{m}");
        group.bench_with_input(BenchmarkId::new("baseline", &param), &sets, |b, sets| {
            let engine = baseline_engine();
            let mut i = 0;
            b.iter(|| {
                i += 1;
                black_box(engine.partition(&sets[i % sets.len()], m).is_ok())
            })
        });
        group.bench_with_input(BenchmarkId::new("optimized", &param), &sets, |b, sets| {
            let engine = optimized_engine();
            let mut ws = PartitionWorkspace::new();
            let mut i = 0;
            b.iter(|| {
                i += 1;
                let ok = match engine.partition_with(&sets[i % sets.len()], m, &mut ws) {
                    Ok(p) => {
                        let ok = true;
                        ws.recycle(p);
                        ok
                    }
                    Err(rej) => {
                        ws.recycle(rej.partial);
                        false
                    }
                };
                black_box(ok)
            })
        });
    }
    group.finish();

    // Cross-processor cache reuse contract on a recorded reference pass:
    // fresh processors must not rebuild their (empty) caches, so a whole
    // grid point triggers at most m rebuilds — 0 in practice.
    let (_, snap) = rmts_obs::record(|| {
        rmts_obs::count("rta.cache.rebuilds", 0);
        let engine = optimized_engine();
        let mut ws = PartitionWorkspace::new();
        for ts in &deep_sets(128, 16) {
            match engine.partition_with(ts, 16, &mut ws) {
                Ok(p) => ws.recycle(p),
                Err(rej) => ws.recycle(rej.partial),
            }
        }
    });
    let rebuilds = snap.counter("rta.cache.rebuilds");
    assert!(
        rebuilds <= 16,
        "cross-processor cache reuse regressed: {rebuilds} rebuilds (cap: m = 16)"
    );
    println!("rta.cache.rebuilds on the recorded reference pass: {rebuilds}");
    rebuilds
}

fn render(results: &[criterion::BenchResult], rebuilds: u64) -> String {
    let entries: Vec<Value> = results
        .iter()
        .map(|r| {
            Value::Object(vec![
                ("group".into(), Value::Str(r.group.clone())),
                ("name".into(), Value::Str(r.name.clone())),
                ("mean_ns".into(), Value::Float(r.mean_ns)),
                ("iters".into(), Value::UInt(r.iters)),
            ])
        })
        .collect();

    let mut speedups = Vec::new();
    let mut log_sum = 0.0;
    let mut count = 0u32;
    let mut min_speedup = f64::INFINITY;
    for r in results {
        let Some(rest) = r.name.strip_prefix("baseline/") else {
            continue;
        };
        let opt_name = format!("optimized/{rest}");
        let Some(o) = results.iter().find(|x| x.name == opt_name) else {
            continue;
        };
        let speedup = r.mean_ns / o.mean_ns;
        min_speedup = min_speedup.min(speedup);
        log_sum += speedup.ln();
        count += 1;
        speedups.push(Value::Object(vec![
            ("grid".into(), Value::Str(rest.to_string())),
            ("baseline_ns".into(), Value::Float(r.mean_ns)),
            ("optimized_ns".into(), Value::Float(o.mean_ns)),
            ("speedup".into(), Value::Float(speedup)),
        ]));
    }
    assert!(count > 0, "no baseline/optimized pairs were timed");
    let geomean = (log_sum / count as f64).exp();
    assert!(
        geomean >= 1.5,
        "end-to-end partition speedup floor violated: geomean {geomean:.2}x < 1.5x"
    );

    let report = Value::Object(vec![
        ("bench".into(), Value::Str("partition_throughput".into())),
        (
            "description".into(),
            Value::Str(
                "whole-set RM-TS/light partitioning on deep sets (n=64-256, m=16-64): \
                 optimized hot path (cross-processor RtaCache reuse + recycled \
                 PartitionWorkspace + pruned TDA points) vs the PR-1 baseline \
                 (scratch admission, fresh allocations per call); results asserted \
                 bit-identical before timing"
                    .into(),
            ),
        ),
        ("seed".into(), Value::UInt(SEED)),
        ("sets_per_grid_point".into(), Value::UInt(SETS)),
        ("results".into(), Value::Array(entries)),
        ("speedups".into(), Value::Array(speedups)),
        ("min_speedup".into(), Value::Float(min_speedup)),
        ("end_to_end_geomean_speedup".into(), Value::Float(geomean)),
        (
            "rta_cache_rebuilds_reference_pass".into(),
            Value::UInt(rebuilds),
        ),
        ("bit_identity".into(), Value::Str("verified".into())),
    ]);
    serde_json::to_string_pretty(&report).expect("render JSON")
}

fn main() {
    let mut c = Criterion::default();
    let rebuilds = bench(&mut c);
    let json = render(c.results(), rebuilds);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_partition.json");
    std::fs::write(path, &json).expect("write BENCH_partition.json");
    println!("\nreport written to {path}");
    for line in json
        .lines()
        .filter(|l| l.contains("speedup") || l.contains("rebuilds"))
    {
        println!("  {}", line.trim());
    }
}
