//! EXP-4 bench: bound verification — quick zero-violation check plus the
//! cost of one verify pipeline (scale → partition → RTA re-check).

use criterion::{criterion_group, criterion_main, Criterion};
use rmts_bench::{harmonic_cfg, SEED};
use rmts_bounds::HarmonicChain;
use rmts_core::{Partitioner, RmTsLight};
use rmts_exp::verify::{verify_campaign, BoundDomain};
use rmts_gen::trial_rng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let m = 4;
    let cfg = harmonic_cfg(m)(1.0);
    let out = verify_campaign(
        &RmTsLight::new(),
        &HarmonicChain,
        BoundDomain::Light,
        m,
        &cfg,
        40,
        SEED,
        Some(2_000_000),
    );
    println!(
        "EXP-4 (quick): {} × {}: tested={} rejections={} rta-fail={} sim-fail={} (expect zeros)\n",
        out.algorithm, out.bound, out.tested, out.rejections, out.rta_failures, out.sim_failures
    );
    assert!(out.clean(), "bound violated: {out:?}");

    let sets: Vec<_> = (0..16)
        .filter_map(|t| cfg.generate(&mut trial_rng(SEED, t)))
        .map(|ts| ts.deflated(0.98))
        .collect();
    assert!(!sets.is_empty());
    let mut group = c.benchmark_group("exp4_verify_pipeline");
    group.sample_size(20);
    group.bench_function("partition_and_reverify_m4", |b| {
        let alg = RmTsLight::new();
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % sets.len();
            let part = alg.partition(&sets[i], m).expect("inside the bound");
            black_box(part.verify_rta())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
