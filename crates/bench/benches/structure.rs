//! EXP-6 bench: partition structure — quick stats row plus timing of the
//! full RM-TS partitioning (the wall-clock column's kernel) as N grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmts_bench::SEED;
use rmts_core::{Partitioner, RmTs};
use rmts_exp::structure::structure_stats;
use rmts_gen::{trial_rng, GenConfig, PeriodGen, UtilizationSpec};
use std::hint::black_box;

fn cfg(n: usize, m: usize, u: f64) -> GenConfig {
    GenConfig::new(n, u * m as f64)
        .with_periods(PeriodGen::LogUniform {
            min: 10_000,
            max: 1_000_000,
            granularity: 10_000,
        })
        .with_utilization(UtilizationSpec::any())
}

fn bench(c: &mut Criterion) {
    let m = 8;
    let stats = structure_stats(&RmTs::new(), m, &cfg(4 * m, m, 0.8), 30, SEED);
    println!(
        "EXP-6 (quick): M={m} U_M=0.80: accepted {}/{} | mean splits {:.2} (max {}) | \
         mean pre-assigned {:.2} | mean dedicated {:.2} | mean time {:.0} µs\n",
        stats.accepted,
        stats.trials,
        stats.mean_split_tasks,
        stats.max_split_tasks,
        stats.mean_pre_assigned,
        stats.mean_dedicated,
        stats.mean_partition_us
    );

    let mut group = c.benchmark_group("exp6_partition_scaling");
    group.sample_size(15);
    for n_per_m in [2usize, 4, 8] {
        let config = cfg(n_per_m * m, m, 0.8);
        let sets: Vec<_> = (0..16)
            .filter_map(|t| config.generate(&mut trial_rng(SEED, t)))
            .collect();
        assert!(!sets.is_empty());
        group.bench_with_input(
            BenchmarkId::new("rmts_m8_u080_n", n_per_m * m),
            &sets,
            |b, sets| {
                let alg = RmTs::new();
                let mut i = 0;
                b.iter(|| {
                    i = (i + 1) % sets.len();
                    black_box(alg.partition(&sets[i], m).is_ok())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
