//! ABL-2 bench: design-choice ablations.
//!
//! Two knobs DESIGN.md calls out:
//!
//! 1. **Admission**: exact RTA (RM-TS/light) vs. density threshold (SPA1)
//!    on the *same* partitioning skeleton — accept rate and speed.
//! 2. **Fit heuristic** for strict partitioned RM: first/best/worst-fit
//!    decreasing under identical RTA admission.

use criterion::{criterion_group, criterion_main, Criterion};
use rmts_bench::{light_cfg, SEED};
use rmts_core::baselines::{spa1, Fit, PartitionedRm};
use rmts_core::rmts_light::FitSelect;
use rmts_core::{Partitioner, RmTsLight};
use rmts_gen::trial_rng;
use rmts_taskmodel::TaskSet;
use std::hint::black_box;

fn sets(m: usize, u: f64, count: u64) -> Vec<TaskSet> {
    let cfg = light_cfg(m)(u);
    (0..count)
        .filter_map(|t| cfg.generate(&mut trial_rng(SEED, t)))
        .collect()
}

fn accept_rate(alg: &dyn Partitioner, sets: &[TaskSet], m: usize) -> f64 {
    let ok = sets.iter().filter(|ts| alg.accepts(ts, m)).count();
    ok as f64 / sets.len() as f64
}

fn bench(c: &mut Criterion) {
    let m = 8;
    let probe = sets(m, 0.85, 60);
    println!(
        "ABL-2 (quick): light sets, M=8, U_M=0.85, {} sets",
        probe.len()
    );
    let light = RmTsLight::new();
    let s1 = spa1(6 * m);
    println!(
        "  admission ablation: exact-RTA accepts {:.1}% | threshold accepts {:.1}%",
        100.0 * accept_rate(&light, &probe, m),
        100.0 * accept_rate(&s1, &probe, m)
    );
    for fit in [Fit::First, Fit::Best, Fit::Worst] {
        let alg = PartitionedRm::new().with_fit(fit);
        println!(
            "  fit ablation: {} accepts {:.1}%",
            alg.name(),
            100.0 * accept_rate(&alg, &probe, m)
        );
    }
    // The splitting engine's own fit ablation: the paper's worst-fit vs. a
    // classic first-fit on the same skeleton (guarantee requires worst-fit).
    let light_ff = RmTsLight::new().with_select(FitSelect::SmallestIndexFirstFit);
    println!(
        "  engine fit ablation: {} accepts {:.1}% | {} accepts {:.1}%",
        light.name(),
        100.0 * accept_rate(&light, &probe, m),
        light_ff.name(),
        100.0 * accept_rate(&light_ff, &probe, m)
    );
    println!();

    let mut group = c.benchmark_group("abl2_admission");
    group.sample_size(20);
    group.bench_function("exact_rta_skeleton", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % probe.len();
            black_box(light.partition(&probe[i], m).is_ok())
        })
    });
    group.bench_function("threshold_skeleton", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % probe.len();
            black_box(s1.partition(&probe[i], m).is_ok())
        })
    });
    for fit in [Fit::First, Fit::Best, Fit::Worst] {
        let alg = PartitionedRm::new().with_fit(fit);
        group.bench_function(format!("prm_{}", alg.name()), |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % probe.len();
                black_box(alg.partition(&probe[i], m).is_ok())
            })
        });
    }
    group.bench_function("rmts_light_first_fit", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % probe.len();
            black_box(light_ff.partition(&probe[i], m).is_ok())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
