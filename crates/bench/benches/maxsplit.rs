//! ABL-1 bench: the two exact `MaxSplit` implementations.
//!
//! The paper remarks that a binary search over `[0, C]` suffices but that
//! \[22\]'s scheduling-point evaluation is more efficient. Both are exact
//! (property-tested equal in `rmts-rta`); this ablation quantifies the
//! speed gap on realistic processor workloads, for the scratch
//! implementations and for their warm-started [`RtaCache`] counterparts
//! (the path the partitioning engine actually uses).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use rmts_bench::SEED;
use rmts_core::MaxSplitStrategy;
use rmts_gen::trial_rng;
use rmts_rta::budget::NewcomerSpec;
use rmts_rta::RtaCache;
use rmts_taskmodel::{Priority, Subtask, SubtaskKind, TaskId, Time};
use std::hint::black_box;

/// A random already-schedulable workload of `n` subtasks plus a newcomer
/// spec with the highest priority (the RM-TS/light splitting situation).
fn scenario(n: usize, trial: u64) -> (Vec<Subtask>, NewcomerSpec) {
    let mut rng = trial_rng(SEED, trial);
    let mut w = Vec::with_capacity(n);
    for i in 0..n {
        let t = rng.gen_range(10_000u64..1_000_000) / 10_000 * 10_000;
        let c = rng.gen_range(1..=t / (2 * n as u64).max(2));
        w.push(Subtask {
            parent: TaskId(i as u32 + 1),
            seq: 1,
            kind: SubtaskKind::Whole,
            wcet: Time::new(c),
            period: Time::new(t),
            deadline: Time::new(t),
            priority: Priority(i as u32 + 1),
        });
    }
    let t_new = rng.gen_range(10_000u64..200_000) / 10_000 * 10_000;
    let spec = NewcomerSpec {
        parent: TaskId(0),
        period: Time::new(t_new),
        deadline: Time::new(t_new),
        priority: Priority(0),
    };
    (w, spec)
}

fn bench(c: &mut Criterion) {
    // Correctness gate before timing: both strategies agree on 100 cases,
    // through the scratch path and through the cache.
    for trial in 0..100 {
        let (w, spec) = scenario(6, trial);
        let cap = Time::new(spec.deadline.ticks());
        let x = MaxSplitStrategy::BinarySearch.max_budget(&w, &spec, cap);
        assert_eq!(
            x,
            MaxSplitStrategy::SchedulingPoints.max_budget(&w, &spec, cap),
            "strategies disagreed on trial {trial}"
        );
        let mut cache = RtaCache::from_workload(&w);
        for strategy in [
            MaxSplitStrategy::BinarySearch,
            MaxSplitStrategy::SchedulingPoints,
        ] {
            assert_eq!(
                x,
                strategy.max_budget_cached(&mut cache, &spec, cap),
                "cached {strategy:?} disagreed on trial {trial}"
            );
        }
    }
    println!("ABL-1: strategies agree on 100 random scenarios; timing them now\n");

    let mut group = c.benchmark_group("abl1_maxsplit");
    group.sample_size(30);
    for n in [4usize, 8, 16] {
        let scenarios: Vec<_> = (0..16).map(|t| scenario(n, t)).collect();
        group.bench_with_input(BenchmarkId::new("binary_search", n), &scenarios, |b, sc| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % sc.len();
                let (w, spec) = &sc[i];
                black_box(MaxSplitStrategy::BinarySearch.max_budget(w, spec, spec.deadline))
            })
        });
        group.bench_with_input(
            BenchmarkId::new("scheduling_points", n),
            &scenarios,
            |b, sc| {
                let mut i = 0;
                b.iter(|| {
                    i = (i + 1) % sc.len();
                    let (w, spec) = &sc[i];
                    black_box(MaxSplitStrategy::SchedulingPoints.max_budget(w, spec, spec.deadline))
                })
            },
        );

        // The same two strategies served from a warm RtaCache — what the
        // engine's `AdmissionPolicy::exact()` path runs.
        for (label, strategy) in [
            ("binary_search_cached", MaxSplitStrategy::BinarySearch),
            (
                "scheduling_points_cached",
                MaxSplitStrategy::SchedulingPoints,
            ),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &scenarios, |b, sc| {
                let mut caches: Vec<RtaCache> =
                    sc.iter().map(|(w, _)| RtaCache::from_workload(w)).collect();
                let mut i = 0;
                b.iter(|| {
                    i = (i + 1) % sc.len();
                    let spec = &sc[i].1;
                    black_box(strategy.max_budget_cached(&mut caches[i], spec, spec.deadline))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
