//! EXP-2 bench: light task sets — quick table plus timing of RM-TS/light
//! vs. the SPA1 baseline at U_M = 0.90, where only exact RTA still accepts.

use criterion::{criterion_group, criterion_main, Criterion};
use rmts_bench::{light_cfg, QUICK_TRIALS, SEED};
use rmts_core::baselines::spa1;
use rmts_core::{AdmissionPolicy, Configure, Partitioner, RmTsLight};
use rmts_exp::acceptance::{acceptance_sweep, sweep_table};
use rmts_exp::CheckLevel;
use rmts_gen::trial_rng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let m = 8;
    let light = RmTsLight::new();
    let s1 = spa1(6 * m);
    let algs: Vec<&dyn Partitioner> = vec![&light, &s1];
    let points = acceptance_sweep(
        &algs,
        m,
        &[0.65, 0.75, 0.85, 0.95],
        QUICK_TRIALS,
        SEED,
        &light_cfg(m),
        CheckLevel::Rta,
    );
    println!(
        "{}",
        sweep_table("EXP-2 (quick): light task sets, M=8", &points).to_text()
    );

    let cfg = light_cfg(m)(0.90);
    let sets: Vec<_> = (0..32)
        .filter_map(|t| cfg.generate(&mut trial_rng(SEED, t)))
        .collect();
    assert!(!sets.is_empty());
    let mut group = c.benchmark_group("exp2_partition_light");
    group.sample_size(20);
    group.bench_function("rmts_light_m8_u090", |b| {
        let alg = RmTsLight::new();
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % sets.len();
            black_box(alg.partition(&sets[i], m).is_ok())
        })
    });
    // Same engine with the scratch (uncached) exact-RTA policy: decision-
    // identical, isolates what the incremental admission cache saves here.
    group.bench_function("rmts_light_scratch_m8_u090", |b| {
        let alg = RmTsLight::new().with_policy(AdmissionPolicy::exact().uncached());
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % sets.len();
            black_box(alg.partition(&sets[i], m).is_ok())
        })
    });
    group.bench_function("spa1_m8_u090", |b| {
        let alg = spa1(6 * m);
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % sets.len();
            black_box(alg.partition(&sets[i], m).is_ok())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
