//! Incremental re-partitioning vs full re-partition on deep sets.
//!
//! The session API's pitch is that a single-task delta should not pay for
//! re-admitting `n` tasks onto `m` processors. This bench measures exactly
//! that on the ISSUE's target grid (n = 128–256, m = 32–64): a live
//! [`PartitionSession`] absorbing a single-task WCET update via guided
//! replay, against a full `partition_with` of the post-delta set (itself
//! the PR-6-optimized hot path with a recycled workspace — the strongest
//! fair baseline).
//!
//! Two delta positions are timed per grid point: `tail` updates the
//! lowest-priority task (the best case — everything before it replays) and
//! `mid` updates the median task (representative — the prefix replays, the
//! updated task and any processors it touches re-run live, the rest of the
//! suffix replays unless its processor was dirtied).
//!
//! Before timing, every toggle is applied both ways and asserted
//! **bit-identical** (`Partition` equality, including response-time bit
//! patterns), and every apply is asserted to take the *incremental* path —
//! a silent fallback to full re-partition would otherwise report a bogus
//! 1×. The geometric-mean speedup across the grid is the headline, written
//! with everything else to `BENCH_repartition.json`; the harness enforces
//! the ISSUE's ≥ 5× floor for single-task deltas.

use criterion::{BenchmarkId, Criterion};
use rmts_bench::SEED;
use rmts_core::{PartitionSession, PartitionWorkspace, Partitioner, RepartitionPath, RmTsLight};
use rmts_gen::{trial_rng, GenConfig, PeriodGen, UtilizationSpec};
use rmts_taskmodel::{Task, TaskSet, TaskSetDelta, Time};
use serde::Value;
use std::hint::black_box;

/// The ISSUE grid: deep sets, n = 128–256 tasks on m = 32–64 processors.
const GRID: [(usize, usize); 3] = [(128, 32), (192, 48), (256, 64)];

/// Where the updated task sits in the canonical (period, id) order.
const POSITIONS: [&str; 2] = ["tail", "mid"];

/// An EXP-1-style deep set this engine *accepts* (sessions need a live
/// base partition). Seeds are retried deterministically until acceptance.
fn accepted_deep_set(n: usize, m: usize) -> TaskSet {
    for attempt in 0..32u64 {
        let cfg = GenConfig::new(n, 0.80 * m as f64)
            .with_periods(PeriodGen::LogUniform {
                min: 10_000,
                max: 1_000_000,
                granularity: 10_000,
            })
            .with_utilization(UtilizationSpec::any());
        let Some(ts) = cfg.generate(&mut trial_rng(
            SEED ^ 0x9E9A,
            (n as u64) << 32 | (m as u64) << 16 | attempt,
        )) else {
            continue;
        };
        if RmTsLight::new().accepts(&ts, m) {
            return ts;
        }
    }
    panic!("no accepted deep set for n={n} m={m} in 32 attempts");
}

/// The single-task toggle for the task at `pos`: lowers its WCET by one
/// tick (stays accepted — utilization only drops), plus the inverse delta
/// restoring the original. Skips to a neighbor if the task's WCET is 1.
fn toggle_for(ts: &TaskSet, pos: &str) -> (TaskSetDelta, TaskSetDelta) {
    let tasks = ts.tasks();
    let start = match pos {
        "tail" => tasks.len() - 1,
        "mid" => tasks.len() / 2,
        other => panic!("unknown position {other}"),
    };
    for back in 0..tasks.len() {
        let t = tasks[start.saturating_sub(back)];
        if t.wcet.ticks() > 1 {
            let lowered = Task::new(t.id.0, Time::new(t.wcet.ticks() - 1), t.period)
                .expect("lowering a WCET keeps the task valid");
            return (TaskSetDelta::update(lowered), TaskSetDelta::update(t));
        }
    }
    panic!("no task with WCET > 1");
}

fn session_for(ts: &TaskSet, m: usize) -> PartitionSession {
    let engine = Box::new(RmTsLight::new());
    PartitionSession::start(engine, ts.clone(), m).expect("base set was pre-checked accepted")
}

fn bench(c: &mut Criterion) {
    // Bit-identity + path gate: each toggle, applied through the session,
    // must equal the from-scratch partition of the post-delta set exactly,
    // and must be served by guided replay (not the full fallback).
    let scratch = RmTsLight::new();
    let mut ws = PartitionWorkspace::new();
    for &(n, m) in &GRID {
        let base = accepted_deep_set(n, m);
        for pos in POSITIONS {
            let (delta_a, delta_b) = toggle_for(&base, pos);
            let mut session = session_for(&base, m);
            for (round, delta) in [&delta_a, &delta_b, &delta_a, &delta_b].iter().enumerate() {
                let expected_ts = delta
                    .apply_to(session.taskset())
                    .expect("toggle deltas are valid");
                let expected = scratch
                    .partition_with(&expected_ts, m, &mut ws)
                    .unwrap_or_else(|_| {
                        panic!("n={n} m={m} {pos}: lowering a WCET must stay accepted")
                    });
                let ok = session.apply(delta).unwrap_or_else(|e| {
                    panic!("n={n} m={m} {pos} round {round}: apply failed: {e}")
                });
                assert_eq!(
                    ok.path,
                    RepartitionPath::Incremental,
                    "n={n} m={m} {pos}: single-task delta fell back to {}",
                    ok.path
                );
                assert_eq!(
                    *ok.partition, expected,
                    "n={n} m={m} {pos} round {round}: incremental diverged from scratch"
                );
                ws.recycle(expected);
            }
        }
    }
    println!("repartition_throughput: incremental ≡ scratch on the whole grid; timing\n");

    let mut group = c.benchmark_group("repartition_throughput");
    group.sample_size(30);
    for &(n, m) in &GRID {
        let base = accepted_deep_set(n, m);
        for pos in POSITIONS {
            let (delta_a, delta_b) = toggle_for(&base, pos);
            let param = format!("{n}x{m}/{pos}");

            // Full re-partition of the post-delta set, with the recycled
            // workspace (the optimized PR-6 hot path — the fair baseline).
            let ts_a = delta_a.apply_to(&base).expect("valid");
            let ts_b = &base;
            group.bench_with_input(BenchmarkId::new("full", &param), &ts_a, |b, ts_a| {
                let engine = RmTsLight::new();
                let mut ws = PartitionWorkspace::new();
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    let ts = if i.is_multiple_of(2) { ts_a } else { ts_b };
                    let p = engine
                        .partition_with(ts, m, &mut ws)
                        .expect("grid sets are accepted");
                    let used = p.processors.len();
                    ws.recycle(p);
                    black_box(used)
                })
            });

            // The session absorbing the same toggles incrementally.
            group.bench_with_input(
                BenchmarkId::new("incremental", &param),
                &(delta_a, delta_b),
                |b, (delta_a, delta_b)| {
                    let mut session = session_for(&base, m);
                    let mut i = 0u64;
                    b.iter(|| {
                        i += 1;
                        let delta = if i % 2 == 1 { delta_a } else { delta_b };
                        let ok = session.apply(delta).expect("toggles stay accepted");
                        black_box(ok.partition.processors.len())
                    })
                },
            );
        }
    }
    group.finish();
}

fn render(results: &[criterion::BenchResult]) -> String {
    let entries: Vec<Value> = results
        .iter()
        .map(|r| {
            Value::Object(vec![
                ("group".into(), Value::Str(r.group.clone())),
                ("name".into(), Value::Str(r.name.clone())),
                ("mean_ns".into(), Value::Float(r.mean_ns)),
                ("iters".into(), Value::UInt(r.iters)),
            ])
        })
        .collect();

    let mut speedups = Vec::new();
    let mut log_sum = 0.0;
    let mut count = 0u32;
    let mut min_speedup = f64::INFINITY;
    for r in results {
        let Some(rest) = r.name.strip_prefix("full/") else {
            continue;
        };
        let inc_name = format!("incremental/{rest}");
        let Some(o) = results.iter().find(|x| x.name == inc_name) else {
            continue;
        };
        let speedup = r.mean_ns / o.mean_ns;
        min_speedup = min_speedup.min(speedup);
        log_sum += speedup.ln();
        count += 1;
        speedups.push(Value::Object(vec![
            ("grid".into(), Value::Str(rest.to_string())),
            ("full_ns".into(), Value::Float(r.mean_ns)),
            ("incremental_ns".into(), Value::Float(o.mean_ns)),
            ("speedup".into(), Value::Float(speedup)),
        ]));
    }
    assert!(count > 0, "no full/incremental pairs were timed");
    let geomean = (log_sum / count as f64).exp();
    assert!(
        geomean >= 5.0,
        "single-task delta speedup floor violated: geomean {geomean:.2}x < 5x"
    );

    let report = Value::Object(vec![
        ("bench".into(), Value::Str("repartition_throughput".into())),
        (
            "description".into(),
            Value::Str(
                "single-task WCET toggles on deep sets (n=128-256, m=32-64) through a \
                 PartitionSession (guided-replay incremental apply) vs a full \
                 re-partition of the post-delta set on the optimized workspace-reuse \
                 hot path; results asserted bit-identical and incremental-path before \
                 timing"
                    .into(),
            ),
        ),
        ("seed".into(), Value::UInt(SEED)),
        ("results".into(), Value::Array(entries)),
        ("speedups".into(), Value::Array(speedups)),
        ("min_speedup".into(), Value::Float(min_speedup)),
        (
            "single_task_delta_geomean_speedup".into(),
            Value::Float(geomean),
        ),
        ("bit_identity".into(), Value::Str("verified".into())),
        ("path".into(), Value::Str("incremental (asserted)".into())),
    ]);
    serde_json::to_string_pretty(&report).expect("render JSON")
}

fn main() {
    let mut c = Criterion::default();
    bench(&mut c);
    let json = render(c.results());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_repartition.json");
    std::fs::write(path, &json).expect("write BENCH_repartition.json");
    println!("\nreport written to {path}");
    for line in json.lines().filter(|l| l.contains("speedup")) {
        println!("  {}", line.trim());
    }
}
