//! Closed-loop multi-client load generator for the TCP front end.
//!
//! An in-process [`Server`] (8-shard service, generous queues) is driven
//! by `CLIENTS` threads over real loopback TCP. Each client is a closed
//! loop — send one JSONL request, block for the response line, repeat —
//! so offered load tracks service rate and the measured latencies are
//! honest round-trip times, not queue-growth artifacts.
//!
//! Three gates before the numbers are recorded:
//!
//! * every response parses as a [`ResponseRecord`] with a dense
//!   per-client index (the protocol holds under concurrency);
//! * zero shed at this rate (the generous queue bound means the shed
//!   ladder must stay on rung 1 — `Pass`);
//! * request conservation: responses received == requests sent.
//!
//! The report — throughput plus p50/p95/p99 round-trip latency — merges
//! into `BENCH_service.json` under the `"net"` key, next to the
//! in-process service numbers it fronts.

use rmts_bench::SEED;
use rmts_core::{AlgorithmSpec, BoundSpec};
use rmts_gen::{trial_rng, GenConfig, PeriodGen, UtilizationSpec};
use rmts_net::{NetConfig, Server};
use rmts_svc::{wire, AnalyzeRequest, ServiceConfig};
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

const UNIQUE_SETS: usize = 40;
const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 400;
const SHARDS: usize = 8;

/// Unique sets in the service-throughput style, smaller pool: the wire
/// traffic is duplicate-heavy, as admission-control traffic is.
fn unique_lines() -> Vec<String> {
    let algorithms = [
        AlgorithmSpec::RmTsLight,
        AlgorithmSpec::RmTs {
            bound: BoundSpec::HarmonicChain,
        },
    ];
    (0..UNIQUE_SETS as u64)
        .map(|trial| {
            let n = 24 + (trial % 8) as usize;
            let cfg = GenConfig::new(n, 0.85 * 4.0)
                .with_periods(PeriodGen::LogUniform {
                    min: 10_000,
                    max: 1_000_000,
                    granularity: 10_000,
                })
                .with_utilization(UtilizationSpec::capped(0.6));
            let ts = cfg
                .generate(&mut trial_rng(SEED ^ 0xA7, trial))
                .expect("generator");
            let pairs: Vec<(u64, u64)> = ts
                .tasks()
                .iter()
                .map(|t| (t.wcet.ticks(), t.period.ticks()))
                .collect();
            let req = AnalyzeRequest::new(pairs, 4, algorithms[(trial % 2) as usize]);
            serde_json::to_string(&req).expect("serialize request")
        })
        .collect()
}

/// One closed-loop client: `count` request/response round trips on one
/// persistent connection; returns per-request latencies in nanoseconds.
fn run_client(addr: std::net::SocketAddr, lines: &[String], id: usize, count: usize) -> Vec<u64> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut latencies = Vec::with_capacity(count);
    let mut response = String::new();
    for i in 0..count {
        // Stagger clients across the pool so concurrent traffic mixes
        // memo hits and misses instead of convoying on one set.
        let line = &lines[(id * 7 + i) % lines.len()];
        let t0 = Instant::now();
        writer.write_all(line.as_bytes()).expect("send");
        writer.write_all(b"\n").expect("send");
        writer.flush().expect("flush");
        response.clear();
        reader.read_line(&mut response).expect("recv");
        latencies.push(t0.elapsed().as_nanos() as u64);
        let rec: wire::ResponseRecord =
            serde_json::from_str(&response).expect("every answer is a ResponseRecord");
        assert_eq!(rec.index, i, "client {id}: response ordinals must be dense");
    }
    latencies
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    let lines = unique_lines();
    let server = Server::start(
        NetConfig::new().with_service(
            ServiceConfig::new()
                .with_shards(SHARDS)
                .with_queue_capacity(1_500),
        ),
    )
    .expect("start server");
    let addr = server.addr();

    println!(
        "net_load: {CLIENTS} closed-loop clients x {REQUESTS_PER_CLIENT} requests \
         over loopback TCP ({UNIQUE_SETS} unique sets, {SHARDS} shards)"
    );
    let t0 = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|id| {
                let lines = &lines;
                s.spawn(move || run_client(addr, lines, id, REQUESTS_PER_CLIENT))
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = t0.elapsed();

    // Gates: conservation, zero shed at this rate, no protocol faults.
    let net = server.net_stats();
    let total = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
    assert_eq!(latencies.len() as u64, total, "request conservation");
    assert_eq!(net.served, total, "server served every request");
    assert_eq!(
        net.shed_degraded + net.shed_overloaded,
        0,
        "generous queues must keep the shed ladder on rung 1: {net:?}"
    );
    assert_eq!(
        net.malformed + net.oversized + net.rate_limited,
        0,
        "{net:?}"
    );
    let stats = server.stop().expect("stop");
    assert_eq!(stats.completed, total);

    latencies.sort_unstable();
    let throughput = total as f64 / wall.as_secs_f64();
    let (p50, p95, p99) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
    );
    println!(
        "  {total} round trips in {:.2} s: {throughput:.0} req/s; \
         p50 {:.1} us, p95 {:.1} us, p99 {:.1} us; {} memo hit(s)",
        wall.as_secs_f64(),
        p50 as f64 / 1e3,
        p95 as f64 / 1e3,
        p99 as f64 / 1e3,
        stats.memo_hits,
    );

    // Merge under the "net" key of BENCH_service.json, preserving the
    // in-process service numbers recorded by service_throughput.
    let report = Value::Object(vec![
        ("bench".into(), Value::Str("net_load".into())),
        (
            "description".into(),
            Value::Str(format!(
                "{CLIENTS} closed-loop JSONL clients over loopback TCP against an \
                 {SHARDS}-shard rmts-net server; round-trip latencies, zero shed asserted"
            )),
        ),
        ("seed".into(), Value::UInt(SEED)),
        ("clients".into(), Value::UInt(CLIENTS as u64)),
        ("requests".into(), Value::UInt(total)),
        ("unique_sets".into(), Value::UInt(UNIQUE_SETS as u64)),
        ("throughput_rps".into(), Value::Float(throughput)),
        ("latency_p50_ns".into(), Value::UInt(p50)),
        ("latency_p95_ns".into(), Value::UInt(p95)),
        ("latency_p99_ns".into(), Value::UInt(p99)),
        ("memo_hits".into(), Value::UInt(stats.memo_hits)),
        ("memo_misses".into(), Value::UInt(stats.memo_misses)),
        ("shed".into(), Value::UInt(0)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    let merged = match std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str::<Value>(&s).ok())
    {
        Some(Value::Object(fields)) => {
            let mut fields: Vec<(String, Value)> =
                fields.into_iter().filter(|(k, _)| k != "net").collect();
            fields.push(("net".into(), report));
            Value::Object(fields)
        }
        _ => Value::Object(vec![("net".into(), report)]),
    };
    std::fs::write(path, serde_json::to_string_pretty(&merged).expect("render"))
        .expect("write BENCH_service.json");
    println!("  report merged into {path} under \"net\"");
}
