//! EXP-1 bench: general task sets — quick reproduction table plus timing
//! of the partitioning kernels at U_M = 0.80 on M = 8.

use criterion::{criterion_group, criterion_main, Criterion};
use rmts_bench::{general_cfg, QUICK_TRIALS, SEED};
use rmts_core::baselines::{spa2, PartitionedRm};
use rmts_core::{Partitioner, RmTs};
use rmts_exp::acceptance::{acceptance_sweep, sweep_table};
use rmts_exp::CheckLevel;
use rmts_gen::trial_rng;
use rmts_taskmodel::TaskSet;
use std::hint::black_box;

fn print_quick_table() {
    let m = 8;
    let rmts = RmTs::new();
    let spa = spa2(4 * m);
    let prm = PartitionedRm::ffd_rta();
    let algs: Vec<&dyn Partitioner> = vec![&rmts, &spa, &prm];
    let points = acceptance_sweep(
        &algs,
        m,
        &[0.6, 0.7, 0.8, 0.9, 1.0],
        QUICK_TRIALS,
        SEED,
        &general_cfg(m),
        CheckLevel::Rta,
    );
    println!(
        "{}",
        sweep_table("EXP-1 (quick): general task sets, M=8", &points).to_text()
    );
}

fn fixed_sets(m: usize, u: f64, count: u64) -> Vec<TaskSet> {
    let cfg = general_cfg(m)(u);
    (0..count)
        .filter_map(|t| cfg.generate(&mut trial_rng(SEED, t)))
        .collect()
}

fn bench(c: &mut Criterion) {
    print_quick_table();
    let m = 8;
    let sets = fixed_sets(m, 0.80, 32);
    assert!(!sets.is_empty());
    let mut group = c.benchmark_group("exp1_partition");
    group.sample_size(20);
    group.bench_function("rmts_m8_u080", |b| {
        let alg = RmTs::new();
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % sets.len();
            black_box(alg.partition(&sets[i], m).is_ok())
        })
    });
    group.bench_function("spa2_m8_u080", |b| {
        let alg = spa2(4 * m);
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % sets.len();
            black_box(alg.partition(&sets[i], m).is_ok())
        })
    });
    group.bench_function("prm_ffd_rta_m8_u080", |b| {
        let alg = PartitionedRm::ffd_rta();
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % sets.len();
            black_box(alg.partition(&sets[i], m).is_ok())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
