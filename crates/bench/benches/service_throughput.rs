//! Service-throughput bench: the sharded batch-analysis service against a
//! serial analyze-every-request loop.
//!
//! The workload is the service's design point: a 10 000-request batch drawn
//! from ~150 unique task sets (duplicate-heavy — admission-control traffic
//! re-asks about the same configurations). Two kernels:
//!
//! * `serial_fresh` — the pre-service baseline: for every request,
//!   canonicalize, build the engine, run the analysis. No memoization.
//! * `batch_service` — a fresh 8-shard [`Service`] per iteration (thread
//!   spawn and teardown are *inside* the timed region), answering the same
//!   batch through bounded queues and shard-local memo tables.
//!
//! Before timing, the harness asserts the service's answers are
//! **bit-identical** (serialized JSON) to the serial fresh analyses for all
//! 10 000 requests — the memo-hit ≡ fresh guarantee the speedup rests on.
//! Results and the speedup go to `BENCH_service.json` at the repo root.

use criterion::Criterion;
use rmts_bench::SEED;
use rmts_core::{AlgorithmSpec, BoundSpec};
use rmts_gen::{trial_rng, GenConfig, PeriodGen, UtilizationSpec};
use rmts_svc::{AnalysisOutcome, AnalyzeRequest, CanonicalSet, Service, ServiceConfig, Verdict};
use serde::Value;
use std::hint::black_box;

const UNIQUE_SETS: usize = 150;
const BATCH: usize = 10_000;
const SHARDS: usize = 8;
/// Size of the 0%-duplicate batch (every request a distinct set — all
/// memo misses, isolating fresh-analysis throughput).
const FRESH_BATCH: usize = 600;

/// ~150 unique task sets in the EXP-1 style (log-uniform periods on the
/// 10 ms grid). Deep sets near the schedulability edge: admission-control
/// traffic asks about non-trivial configurations, where RTA fixed points
/// iterate and the analysis — not the queueing — is the cost.
fn unique_sets() -> Vec<Vec<(u64, u64)>> {
    (0..UNIQUE_SETS as u64)
        .map(|trial| {
            let n = 52 + (trial % 8) as usize;
            let cfg = GenConfig::new(n, 0.87 * 4.0)
                .with_periods(PeriodGen::LogUniform {
                    min: 10_000,
                    max: 1_000_000,
                    granularity: 10_000,
                })
                .with_utilization(UtilizationSpec::capped(0.6));
            let ts = cfg
                .generate(&mut trial_rng(SEED ^ 0x5C, trial))
                .expect("generator");
            ts.tasks()
                .iter()
                .map(|t| (t.wcet.ticks(), t.period.ticks()))
                .collect()
        })
        .collect()
}

/// The 10 000-request batch: round-robin over the unique sets and two
/// engine configurations (so ~300 distinct analyses back ~10k requests).
fn batch() -> Vec<AnalyzeRequest> {
    let sets = unique_sets();
    let algorithms = [
        AlgorithmSpec::RmTsLight,
        AlgorithmSpec::RmTs {
            bound: BoundSpec::HarmonicChain,
        },
    ];
    (0..BATCH)
        .map(|i| {
            AnalyzeRequest::new(
                sets[i % sets.len()].clone(),
                4,
                algorithms[(i / sets.len()) % algorithms.len()],
            )
        })
        .collect()
}

/// A 0%-duplicate batch: every request carries a distinct task set, so the
/// memo table never hits and every answer is a fresh analysis. This is the
/// complement of [`batch`]: it measures the service's un-memoizable hot
/// path (canonicalization, queueing, engine reuse, workspace-recycled
/// partitioning) rather than deduplication.
fn fresh_only_batch() -> Vec<AnalyzeRequest> {
    let algorithms = [
        AlgorithmSpec::RmTsLight,
        AlgorithmSpec::RmTs {
            bound: BoundSpec::HarmonicChain,
        },
    ];
    (0..FRESH_BATCH as u64)
        .map(|trial| {
            let n = 52 + (trial % 8) as usize;
            let cfg = GenConfig::new(n, 0.87 * 4.0)
                .with_periods(PeriodGen::LogUniform {
                    min: 10_000,
                    max: 1_000_000,
                    granularity: 10_000,
                })
                .with_utilization(UtilizationSpec::capped(0.6));
            let ts = cfg
                .generate(&mut trial_rng(SEED ^ 0xF0, trial))
                .expect("generator");
            let pairs = ts
                .tasks()
                .iter()
                .map(|t| (t.wcet.ticks(), t.period.ticks()))
                .collect();
            AnalyzeRequest::new(pairs, 4, algorithms[(trial % 2) as usize])
        })
        .collect()
}

/// The service-free reference: canonicalize, build the engine, analyze.
/// Exactly what a shard does on a memo miss.
fn fresh_outcome(req: &AnalyzeRequest) -> AnalysisOutcome {
    let canon = CanonicalSet::of_pairs(&req.taskset);
    let ts = canon.to_taskset().expect("generated sets are valid");
    let engine = req
        .algorithm
        .build_with(ts.len(), &req.options())
        .expect("defaults are representable");
    let verdict = match engine.partition(&ts, req.m) {
        Ok(p) => Verdict::Accepted {
            processors_used: p.processors.iter().filter(|q| !q.is_empty()).count(),
            splits: p.split_tasks().iter().map(|t| t.0).collect(),
            exactness: p.exactness,
        },
        Err(rej) => Verdict::Rejected {
            phase: rej.phase,
            task: rej.task.map(|t| t.0),
            unassigned: rej.unassigned.iter().map(|t| t.0).collect(),
            analysis: rej.analysis,
            reason: rej.reason.clone(),
        },
    };
    AnalysisOutcome {
        algorithm: engine.name(),
        m: req.m,
        verdict,
    }
}

fn bench(c: &mut Criterion) -> (u64, u64) {
    let reqs = batch();

    // Correctness gate before timing: every service answer — memo hit or
    // not — serializes to the same bytes as the serial fresh analysis.
    let svc = Service::new(
        ServiceConfig::new()
            .with_shards(SHARDS)
            .with_queue_capacity(1_500),
    );
    let responses = svc.analyze_batch(reqs.clone());
    for (req, resp) in reqs.iter().zip(&responses) {
        let fresh = fresh_outcome(req);
        assert_eq!(
            serde_json::to_string(&*resp.outcome).unwrap(),
            serde_json::to_string(&fresh).unwrap(),
            "service outcome diverged from fresh analysis"
        );
    }
    let stats = svc.stats();
    assert!(
        stats.memo_hits > 0 && stats.memo_misses as usize <= 2 * UNIQUE_SETS,
        "the duplicate-heavy batch must be memo-served: {stats:?}"
    );
    println!(
        "service_throughput: {} responses bit-identical to fresh analysis \
         ({} unique analyses, {} memo hits); timing\n",
        responses.len(),
        stats.memo_misses,
        stats.memo_hits
    );
    let (hits, misses) = (stats.memo_hits, stats.memo_misses);
    drop(svc);

    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);
    group.bench_function("serial_fresh", |b| {
        b.iter(|| {
            let mut accepted = 0usize;
            for req in &reqs {
                if matches!(fresh_outcome(req).verdict, Verdict::Accepted { .. }) {
                    accepted += 1;
                }
            }
            black_box(accepted)
        })
    });
    group.bench_function("batch_service", |b| {
        b.iter(|| {
            // A cold service per iteration: spawn, serve, join — so the
            // measured speedup includes all service overhead and no
            // cross-iteration memo warmth.
            let svc = Service::new(
                ServiceConfig::new()
                    .with_shards(SHARDS)
                    .with_queue_capacity(1_500),
            );
            black_box(svc.analyze_batch(reqs.clone()).len())
        })
    });

    // The 0%-duplicate variant: every request distinct, every answer a
    // fresh analysis. Gate first: the batch really is duplicate-free and
    // still bit-identical to serial analysis.
    let fresh_reqs = fresh_only_batch();
    let svc = Service::new(
        ServiceConfig::new()
            .with_shards(SHARDS)
            .with_queue_capacity(1_500),
    );
    let responses = svc.analyze_batch(fresh_reqs.clone());
    for (req, resp) in fresh_reqs.iter().zip(&responses) {
        let fresh = fresh_outcome(req);
        assert_eq!(
            serde_json::to_string(&*resp.outcome).unwrap(),
            serde_json::to_string(&fresh).unwrap(),
            "0%-duplicate service outcome diverged from fresh analysis"
        );
    }
    let fresh_stats = svc.stats();
    assert_eq!(
        fresh_stats.memo_misses as usize,
        fresh_reqs.len(),
        "the 0%-duplicate batch must be all memo misses: {fresh_stats:?}"
    );
    drop(svc);

    group.bench_function("serial_0dup", |b| {
        b.iter(|| {
            let mut accepted = 0usize;
            for req in &fresh_reqs {
                if matches!(fresh_outcome(req).verdict, Verdict::Accepted { .. }) {
                    accepted += 1;
                }
            }
            black_box(accepted)
        })
    });
    group.bench_function("service_0dup", |b| {
        b.iter(|| {
            let svc = Service::new(
                ServiceConfig::new()
                    .with_shards(SHARDS)
                    .with_queue_capacity(1_500),
            );
            black_box(svc.analyze_batch(fresh_reqs.clone()).len())
        })
    });
    group.finish();
    (hits, misses)
}

fn render(results: &[criterion::BenchResult], memo_hits: u64, memo_misses: u64) -> String {
    let mean = |name: &str| {
        results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.mean_ns)
            .expect("kernel was timed")
    };
    let serial = mean("serial_fresh");
    let service = mean("batch_service");
    let speedup = serial / service;
    assert!(
        speedup >= 4.0,
        "the service must beat the serial loop by >= 4x on the duplicate-heavy \
         batch (got {speedup:.2}x: serial {serial:.0} ns vs service {service:.0} ns)"
    );
    let serial_0dup = mean("serial_0dup");
    let service_0dup = mean("service_0dup");
    let fresh_speedup = serial_0dup / service_0dup;
    // With zero duplicates the memo never helps; the win comes from shard
    // parallelism (absent on single-core CI boxes) plus engine/workspace
    // reuse on the miss path. Gate only against pathological overhead —
    // the recorded `fresh_speedup_0dup` is the honest headline.
    assert!(
        fresh_speedup >= 0.7,
        "service overhead swamps fresh analysis on the 0%-duplicate batch \
         (got {fresh_speedup:.2}x: serial {serial_0dup:.0} ns vs \
         service {service_0dup:.0} ns)"
    );

    let entries: Vec<Value> = results
        .iter()
        .map(|r| {
            Value::Object(vec![
                ("name".into(), Value::Str(r.name.clone())),
                ("mean_ns".into(), Value::Float(r.mean_ns)),
                ("iters".into(), Value::UInt(r.iters)),
            ])
        })
        .collect();
    let report = Value::Object(vec![
        ("bench".into(), Value::Str("service_throughput".into())),
        (
            "description".into(),
            Value::Str(
                "8-shard rmts-svc batch service vs serial fresh analysis on a \
                 10k-request duplicate-heavy batch (~150 unique sets x 2 engines); \
                 all service answers asserted bit-identical to fresh analysis"
                    .into(),
            ),
        ),
        ("seed".into(), Value::UInt(SEED)),
        ("batch_size".into(), Value::UInt(BATCH as u64)),
        ("unique_sets".into(), Value::UInt(UNIQUE_SETS as u64)),
        ("shards".into(), Value::UInt(SHARDS as u64)),
        ("memo_hits".into(), Value::UInt(memo_hits)),
        ("memo_misses".into(), Value::UInt(memo_misses)),
        ("fresh_batch_size".into(), Value::UInt(FRESH_BATCH as u64)),
        ("results".into(), Value::Array(entries)),
        ("speedup".into(), Value::Float(speedup)),
        ("fresh_speedup_0dup".into(), Value::Float(fresh_speedup)),
        ("bit_identity".into(), Value::Str("verified".into())),
    ]);
    serde_json::to_string_pretty(&report).expect("render JSON")
}

fn main() {
    let mut c = Criterion::default();
    let (hits, misses) = bench(&mut c);
    let json = render(c.results(), hits, misses);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    std::fs::write(path, &json).expect("write BENCH_service.json");
    println!("\nreport written to {path}");
    for line in json
        .lines()
        .filter(|l| l.contains("speedup") || l.contains("mean_ns"))
    {
        println!("  {}", line.trim());
    }
}
