//! Admission-cache bench: cached vs scratch admission on the EXP-1 mix.
//!
//! Three kernels, each timed through the incremental [`RtaCache`] path and
//! through the scratch re-analysis path it replaces:
//!
//! * `probe_*` — steady-state admission probes against a standing
//!   processor workload (the first-fit inner loop: most probes do not
//!   mutate the processor, so the cache is warm);
//! * `maxsplit_*` — binary-search `MaxSplit` on the same workloads (each
//!   search issues ~`log₂ C` probes, all warm-started from cached response
//!   times);
//! * `partition_*` — a full `RM-TS/light` partitioning run end-to-end, the
//!   only kernel that also pays cache maintenance (pushes, rebuilds).
//!
//! Workloads use the EXP-1 generator mix (log-uniform periods on a 10 ms
//! grid, UUniFast utilizations). After timing, the harness pairs each
//! cached/scratch measurement, computes speedups, and writes everything to
//! `BENCH_admission.json` at the repository root, plus a recorded
//! observability snapshot (`rmts-obs`) to `BENCH_admission_stats.json`.

use criterion::{BenchmarkId, Criterion};
use rand::Rng;
use rmts_bench::{general_cfg, SEED};
use rmts_core::{AdmissionPolicy, Configure, Partitioner, ProcessorState, RmTsLight};
use rmts_gen::{trial_rng, GenConfig, PeriodGen, UtilizationSpec};
use rmts_rta::budget::{admits_budget, max_admissible_budget_bsearch, NewcomerSpec};
use rmts_rta::RtaCache;
use rmts_taskmodel::{Priority, Subtask, TaskId, TaskSet, Time};
use serde::Value;
use std::hint::black_box;

/// One processor's worth of EXP-1-style tasks: log-uniform periods on the
/// 10 ms grid, UUniFast split of a near-breakdown total utilization over
/// `n` tasks (first-fit fills each processor to its schedulability edge, so
/// this is the steady state the admission path actually sees).
fn processor_cfg(n: usize) -> GenConfig {
    GenConfig::new(n, 0.88)
        .with_periods(PeriodGen::LogUniform {
            min: 10_000,
            max: 1_000_000,
            granularity: 10_000,
        })
        .with_utilization(UtilizationSpec::any())
}

/// A standing workload (greedily admitted, so fully schedulable) plus a
/// highest-priority newcomer and a budget ladder mixing accepts and
/// rejects — the RM-TS splitting situation.
struct Scenario {
    workload: Vec<Subtask>,
    cache: RtaCache,
    spec: NewcomerSpec,
    budgets: Vec<Time>,
}

fn scenario(n: usize, trial: u64) -> Scenario {
    let mut rng = trial_rng(SEED, trial);
    let ts = processor_cfg(n).generate(&mut rng).expect("generator");
    let mut cache = RtaCache::new();
    let mut workload = Vec::new();
    for (i, (_, task)) in ts.iter_prioritized().enumerate() {
        // Re-rank priorities from 1 so the newcomer can take priority 0.
        let s = Subtask::whole(task, Priority(i as u32 + 1));
        let spec = NewcomerSpec {
            parent: s.parent,
            period: s.period,
            deadline: s.deadline,
            priority: s.priority,
        };
        if cache.probe(&spec, s.wcet) {
            cache.push(s);
            workload.push(s);
        }
    }
    let t_new = rng.gen_range(10_000u64..200_000) / 10_000 * 10_000;
    let spec = NewcomerSpec {
        parent: TaskId(0),
        period: Time::new(t_new),
        deadline: Time::new(t_new),
        priority: Priority(0),
    };
    let d = spec.deadline.ticks();
    let budgets = [d / 64, d / 16, d / 4, d / 2, d]
        .iter()
        .map(|&x| Time::new(x.max(1)))
        .collect();
    Scenario {
        workload,
        cache,
        spec,
        budgets,
    }
}

/// EXP-1 task sets for the end-to-end partition kernel.
fn exp1_sets(m: usize, count: u64) -> Vec<TaskSet> {
    (0..count)
        .map(|trial| {
            let mut rng = trial_rng(SEED ^ 0xE1, trial);
            general_cfg(m)(0.90).generate(&mut rng).expect("generator")
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    // Correctness gate before timing: cached and scratch agree everywhere.
    for trial in 0..50 {
        let mut sc = scenario(16, trial);
        for &x in &sc.budgets {
            assert_eq!(
                sc.cache.probe(&sc.spec, x),
                admits_budget(&sc.workload, &sc.spec, x),
                "probe/admits_budget disagree on trial {trial}"
            );
        }
        let cap = sc.spec.deadline;
        assert_eq!(
            sc.cache.max_budget_bsearch(&sc.spec, cap),
            max_admissible_budget_bsearch(&sc.workload, &sc.spec, cap),
            "maxsplit bsearch disagrees on trial {trial}"
        );
    }
    println!("admission_cache: cached ≡ scratch on 50 random scenarios; timing\n");

    let mut group = c.benchmark_group("admission_cache");
    // Long measurement windows: the paired cached/scratch ratios are the
    // deliverable, so per-kernel variance matters more than wall clock.
    group.sample_size(200);

    for n in [8usize, 16, 32] {
        let scenarios: Vec<Scenario> = (0..16).map(|t| scenario(n, t)).collect();

        // Steady-state probes: one admission decision per iteration,
        // rotating over scenarios × the budget ladder.
        group.bench_with_input(BenchmarkId::new("probe_cached", n), &scenarios, |b, sc| {
            let mut i = 0;
            b.iter(|| {
                i += 1;
                let s = &sc[i % sc.len()];
                let x = s.budgets[i % s.budgets.len()];
                black_box(s.cache.probe(&s.spec, x))
            })
        });
        group.bench_with_input(BenchmarkId::new("probe_scratch", n), &scenarios, |b, sc| {
            let mut i = 0;
            b.iter(|| {
                i += 1;
                let s = &sc[i % sc.len()];
                let x = s.budgets[i % s.budgets.len()];
                black_box(admits_budget(&s.workload, &s.spec, x))
            })
        });

        // MaxSplit by binary search: ~log₂ C probes per call. The cached
        // search is `&mut` now (it recycles its probe buffers through the
        // cache's spare pool), so these scenarios are owned mutably by the
        // closure rather than passed as bench input.
        let mut ms_scenarios: Vec<Scenario> = (0..16).map(|t| scenario(n, t)).collect();
        group.bench_function(BenchmarkId::new("maxsplit_cached", n), |b| {
            let mut i = 0;
            b.iter(|| {
                i += 1;
                let idx = i % ms_scenarios.len();
                let s = &mut ms_scenarios[idx];
                black_box(s.cache.max_budget_bsearch(&s.spec, s.spec.deadline))
            })
        });
        group.bench_with_input(
            BenchmarkId::new("maxsplit_scratch", n),
            &scenarios,
            |b, sc| {
                let mut i = 0;
                b.iter(|| {
                    i += 1;
                    let s = &sc[i % sc.len()];
                    black_box(max_admissible_budget_bsearch(
                        &s.workload,
                        &s.spec,
                        s.spec.deadline,
                    ))
                })
            },
        );
    }

    // End-to-end: full RM-TS/light partitioning (EXP-1, m = 8), paying
    // cache maintenance as well as reaping probe savings.
    let m = 8;
    let sets = exp1_sets(m, 8);
    for (label, policy) in [
        ("partition_cached", AdmissionPolicy::exact()),
        ("partition_scratch", AdmissionPolicy::exact().uncached()),
    ] {
        group.bench_with_input(BenchmarkId::new(label, m), &sets, |b, sets| {
            let alg = RmTsLight::new().with_policy(policy);
            let mut i = 0;
            b.iter(|| {
                i += 1;
                black_box(alg.partition(&sets[i % sets.len()], m).is_ok())
            })
        });
    }
    group.finish();

    // Replay sanity on the partition kernel inputs: identical outcomes.
    for ts in &exp1_sets(m, 8) {
        let a = RmTsLight::new()
            .with_policy(AdmissionPolicy::exact())
            .partition(ts, m);
        let b = RmTsLight::new()
            .with_policy(AdmissionPolicy::exact().uncached())
            .partition(ts, m);
        assert_eq!(a.is_ok(), b.is_ok(), "cached/scratch verdicts diverged");
    }

    // Keep the trivial-workload admission path honest too (engine probes
    // empty processors constantly during early placement).
    let empty = ProcessorState::new(0);
    let spec = NewcomerSpec {
        parent: TaskId(0),
        period: Time::new(10_000),
        deadline: Time::new(10_000),
        priority: Priority(0),
    };
    let mut p = empty.clone();
    assert!(AdmissionPolicy::exact().fits_whole(&mut p, &spec, Time::new(5_000)));
}

/// One recorded RM-TS/light partition pass over the EXP-1 sets: the
/// observability snapshot (partitioner phases, RTA-cache hit/miss/re-step
/// counters) that ships alongside the timing report. Recording is active
/// only here — the timed kernels above run with the no-op recorder.
fn record_stats(m: usize, sets: &[TaskSet]) -> String {
    let alg = RmTsLight::new();
    let (_, snap) = rmts_obs::record(|| {
        // Pre-touch the rebuild counter so the snapshot always carries the
        // key — a run with zero rebuilds should report `0`, not omit it.
        rmts_obs::count("rta.cache.rebuilds", 0);
        for ts in sets {
            black_box(alg.partition(ts, m).is_ok());
        }
    });
    assert_eq!(
        snap.counter("rta.cache.hits") + snap.counter("rta.cache.misses"),
        snap.counter("rta.cache.probes"),
        "cache probe accounting out of balance"
    );
    assert!(
        snap.counter("rta.cache.rebuilds") <= m as u64,
        "cross-processor cache reuse regressed: {} rebuilds on the reference run (cap: m = {m})",
        snap.counter("rta.cache.rebuilds")
    );
    serde_json::to_string_pretty(&snap).expect("render stats JSON")
}

/// Pairs `*_cached`/`*_scratch` results and renders the JSON report.
fn render(results: &[criterion::BenchResult]) -> String {
    let entries: Vec<Value> = results
        .iter()
        .map(|r| {
            Value::Object(vec![
                ("group".into(), Value::Str(r.group.clone())),
                ("name".into(), Value::Str(r.name.clone())),
                ("mean_ns".into(), Value::Float(r.mean_ns)),
                ("iters".into(), Value::UInt(r.iters)),
            ])
        })
        .collect();

    let mut speedups = Vec::new();
    // Admission kernels (probe, maxsplit) are where the cache claims its
    // win; the end-to-end partition kernel is reported separately because
    // EXP-1 per-processor workloads are shallow (n/m ≈ 4–6 subtasks), so
    // engine overhead dominates and cached ≈ scratch there.
    let mut admission_min = f64::INFINITY;
    let mut admission_log_sum = 0.0;
    let mut admission_count = 0u32;
    let mut end_to_end = f64::NAN;
    for r in results {
        let Some(base) = r.name.find("_cached") else {
            continue;
        };
        let scratch_name = format!("{}_scratch{}", &r.name[..base], &r.name[base + 7..]);
        let Some(s) = results.iter().find(|x| x.name == scratch_name) else {
            continue;
        };
        let speedup = s.mean_ns / r.mean_ns;
        if r.name.starts_with("partition") {
            end_to_end = speedup;
        } else {
            admission_min = admission_min.min(speedup);
            admission_log_sum += speedup.ln();
            admission_count += 1;
        }
        speedups.push(Value::Object(vec![
            ("kernel".into(), Value::Str(r.name.replace("_cached", ""))),
            ("cached_ns".into(), Value::Float(r.mean_ns)),
            ("scratch_ns".into(), Value::Float(s.mean_ns)),
            ("speedup".into(), Value::Float(speedup)),
        ]));
    }

    let report = Value::Object(vec![
        ("bench".into(), Value::Str("admission_cache".into())),
        (
            "description".into(),
            Value::Str(
                "cached (incremental RtaCache) vs scratch admission on the EXP-1 generator mix"
                    .into(),
            ),
        ),
        ("seed".into(), Value::UInt(SEED)),
        ("results".into(), Value::Array(entries)),
        ("speedups".into(), Value::Array(speedups)),
        (
            "admission_min_speedup".into(),
            if admission_min.is_finite() {
                Value::Float(admission_min)
            } else {
                Value::Null
            },
        ),
        (
            "admission_geomean_speedup".into(),
            if admission_count > 0 {
                Value::Float((admission_log_sum / admission_count as f64).exp())
            } else {
                Value::Null
            },
        ),
        (
            "end_to_end_partition_speedup".into(),
            if end_to_end.is_finite() {
                Value::Float(end_to_end)
            } else {
                Value::Null
            },
        ),
    ]);
    serde_json::to_string_pretty(&report).expect("render JSON")
}

fn main() {
    let mut c = Criterion::default();
    bench(&mut c);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_admission.json");
    let json = render(c.results());
    std::fs::write(path, &json).expect("write BENCH_admission.json");
    println!("\nspeedup summary written to {path}");
    for line in json.lines().filter(|l| l.contains("speedup")) {
        println!("  {}", line.trim());
    }
    let stats_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_admission_stats.json"
    );
    let stats = record_stats(8, &exp1_sets(8, 8));
    std::fs::write(stats_path, &stats).expect("write BENCH_admission_stats.json");
    println!("observability snapshot written to {stats_path}");
}
