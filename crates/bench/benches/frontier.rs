//! EXP-12 bench: the algorithm frontier.
//!
//! Prints a quick smoke-sized frontier reproduction (acceptance sweep +
//! breakdown distribution over the whole `AlgorithmSpec` catalogue), then
//! times the two kernels the committed `results/exp12_frontier.json`
//! artifact is built from: one full catalogue sweep grid point, and one
//! shape's breakdown bisection across every catalogue engine.

use criterion::{criterion_group, criterion_main, Criterion};
use rmts_bench::{general_cfg, SEED};
use rmts_core::{AlgorithmSpec, DynPartitioner};
use rmts_exp::breakdown::breakdown_of;
use rmts_exp::frontier::{frontier, frontier_breakdown_table, frontier_sweep_table};
use rmts_exp::FrontierConfig;
use rmts_gen::trial_rng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let report = frontier(&FrontierConfig::smoke(SEED));
    println!(
        "EXP-12 (quick): {} catalogue entries",
        report.algorithms.len()
    );
    for machine in &report.machines {
        println!("{}", frontier_sweep_table(&report, machine).to_text());
        println!("{}", frontier_breakdown_table(machine).to_text());
    }

    let m = 4usize;
    let n = 4 * m;
    let engines: Vec<DynPartitioner> = AlgorithmSpec::catalogue()
        .iter()
        .map(|s| s.build(n))
        .collect();
    let cfg = general_cfg(m)(0.85);
    let sets: Vec<_> = (0..24)
        .filter_map(|t| cfg.generate(&mut trial_rng(SEED, t)))
        .collect();
    let full = general_cfg(m)(1.0);
    let shape = (0..24)
        .find_map(|t| full.generate(&mut trial_rng(SEED ^ 1, t)))
        .expect("full-load shape");

    let mut group = c.benchmark_group("exp12_frontier");
    group.sample_size(10);
    group.bench_function("catalogue_sweep_point_m4", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % sets.len();
            let accepted: usize = engines
                .iter()
                .filter(|alg| alg.accepts(&sets[i], m))
                .count();
            black_box(accepted)
        })
    });
    group.bench_function("catalogue_breakdown_shape_m4", |b| {
        b.iter(|| {
            let total: f64 = engines
                .iter()
                .map(|alg| breakdown_of(alg.as_ref(), m, &shape))
                .sum();
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
