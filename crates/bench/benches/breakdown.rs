//! EXP-5 bench: breakdown utilization — quick means plus the cost of one
//! bisection per algorithm.

use criterion::{criterion_group, criterion_main, Criterion};
use rmts_bench::{general_cfg, SEED};
use rmts_core::baselines::spa2;
use rmts_core::{Partitioner, RmTs};
use rmts_exp::breakdown::{average_breakdown, breakdown_of};
use rmts_gen::trial_rng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let m = 4;
    let cfg = general_cfg(m)(1.0);
    let rmts = RmTs::new();
    let spa = spa2(4 * m);
    for alg in [&rmts as &dyn Partitioner, &spa] {
        let stats = average_breakdown(alg, m, &cfg, 15, SEED);
        println!(
            "EXP-5 (quick): {} M={m}: mean breakdown {:.4} (min {:.4}, max {:.4})",
            alg.name(),
            stats.mean,
            stats.min,
            stats.max
        );
    }
    println!();

    let shape = cfg.generate(&mut trial_rng(SEED, 0)).expect("generate");
    let mut group = c.benchmark_group("exp5_breakdown_bisection");
    group.sample_size(10);
    group.bench_function("rmts_bisect_m4", |b| {
        b.iter(|| black_box(breakdown_of(&rmts, m, &shape)))
    });
    group.bench_function("spa2_bisect_m4", |b| {
        b.iter(|| black_box(breakdown_of(&spa, m, &shape)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
