//! EXP-7 bench: the Dhall effect — reproduction line plus simulator
//! throughput on the adversary (global vs. partitioned engines).

use criterion::{criterion_group, criterion_main, Criterion};
use rmts_core::{Partitioner, RmTs};
use rmts_sim::global::dhall_adversary;
use rmts_sim::{simulate_global, simulate_partitioned, SimConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let m = 4;
    let ts = dhall_adversary(m, 100_000, 10);
    let global = simulate_global(&ts, m, SimConfig::default());
    let part = RmTs::new().partition(&ts, m).expect("RM-TS accepts");
    let part_sim = simulate_partitioned(&part.workloads(), SimConfig::default());
    println!(
        "EXP-7 (quick): M={m}, U_M={:.4}: global RM missed={} | RM-TS accepted, missed={}\n",
        ts.normalized_utilization(m),
        !global.all_deadlines_met(),
        !part_sim.all_deadlines_met()
    );
    assert!(!global.all_deadlines_met());
    assert!(part_sim.all_deadlines_met());

    let mut group = c.benchmark_group("exp7_dhall_sim");
    group.sample_size(20);
    group.bench_function("global_sim_m4", |b| {
        b.iter(|| black_box(simulate_global(&ts, m, SimConfig::default()).misses.len()))
    });
    group.bench_function("partitioned_sim_m4", |b| {
        let workloads = part.workloads();
        b.iter(|| black_box(simulate_partitioned(&workloads, SimConfig::default()).jobs_completed))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
