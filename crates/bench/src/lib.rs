//! Shared fixtures for the experiment benchmarks.
//!
//! Each bench target under `benches/` reproduces one experiment from
//! DESIGN.md §3: it first prints a reduced-trial reproduction table (the
//! full-size tables come from the `rmts-exp` binaries) and then times the
//! computational kernel with Criterion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rmts_gen::{GenConfig, PeriodGen, UtilizationSpec};

/// Trials per grid point for the quick tables printed by benches.
pub const QUICK_TRIALS: u64 = 50;

/// The master seed used across all benches (tables are reproducible).
pub const SEED: u64 = 0x52_4D_54_53; // "RMTS"

/// General task sets (EXP-1): log-uniform periods on a 10 ms grid,
/// unconstrained utilizations, `n = 4·m` tasks.
pub fn general_cfg(m: usize) -> impl Fn(f64) -> GenConfig + Sync {
    move |u| {
        GenConfig::new(4 * m, u * m as f64)
            .with_periods(PeriodGen::LogUniform {
                min: 10_000,
                max: 1_000_000,
                granularity: 10_000,
            })
            .with_utilization(UtilizationSpec::any())
    }
}

/// Light task sets (EXP-2): individual utilizations capped at 0.4
/// (≈ `Θ/(1+Θ)`), `n = 6·m` tasks so high totals stay feasible.
pub fn light_cfg(m: usize) -> impl Fn(f64) -> GenConfig + Sync {
    move |u| {
        GenConfig::new(6 * m, u * m as f64)
            .with_periods(PeriodGen::LogUniform {
                min: 10_000,
                max: 1_000_000,
                granularity: 10_000,
            })
            .with_utilization(UtilizationSpec::capped(0.40))
    }
}

/// Harmonic light task sets (EXP-3): one octave chain, light tasks.
pub fn harmonic_cfg(m: usize) -> impl Fn(f64) -> GenConfig + Sync {
    move |u| {
        GenConfig::new(6 * m, u * m as f64)
            .with_periods(PeriodGen::Harmonic {
                base: 10_000,
                octaves: 5,
            })
            .with_utilization(UtilizationSpec::capped(0.40))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmts_gen::trial_rng;
    use rmts_taskmodel::harmonic::taskset_is_harmonic;

    #[test]
    fn fixtures_generate() {
        let mut rng = trial_rng(SEED, 0);
        let g = general_cfg(4)(0.8).generate(&mut rng).unwrap();
        assert_eq!(g.len(), 16);
        let l = light_cfg(4)(0.8).generate(&mut rng).unwrap();
        assert!(l.max_utilization() <= 0.405);
        let h = harmonic_cfg(4)(0.9).generate(&mut rng).unwrap();
        assert!(taskset_is_harmonic(&h));
    }
}
