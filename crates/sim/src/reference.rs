//! A deliberately naive tick-by-tick reference simulator.
//!
//! The event-driven engine in [`crate::partitioned`] is the fast production
//! path; this module re-implements the same semantics by brute force — one
//! tick at a time, no events, no cleverness — purely as a differential
//! oracle. It is `O(horizon × tasks)` and only suitable for small tests,
//! where it must agree with the event-driven engine *exactly* (same
//! completions, same response times, same misses).

use crate::check::{ReleaseModel, SimConfig, SimReport};
use crate::engine::{build_chains, horizon_for, Jitter};
use rmts_taskmodel::{Subtask, Time};

/// Tick-by-tick simulation of partitioned fixed-priority scheduling with
/// subtask precedence. Semantics identical to
/// [`crate::partitioned::simulate_partitioned`].
pub fn simulate_reference(workloads: &[&[Subtask]], config: SimConfig) -> SimReport {
    let chains = build_chains(workloads);
    let horizon = horizon_for(&chains, config.horizon);
    let mut report = SimReport {
        horizon,
        ..SimReport::default()
    };
    if chains.is_empty() {
        return report;
    }
    let n_proc = workloads.len();

    struct St {
        next_release: Time,
        next_job: u64,
        // (job, released, stage, remaining)
        active: Option<(u64, Time, usize, Time)>,
    }
    let mut jitter: Vec<Jitter> = chains
        .iter()
        .map(|c| match config.release {
            ReleaseModel::Periodic => Jitter::new(0, 0),
            ReleaseModel::Sporadic { seed, .. } => Jitter::new(seed, c.id.0 as u64),
        })
        .collect();
    let mut st: Vec<St> = chains
        .iter()
        .zip(&mut jitter)
        .map(|(_, j)| St {
            next_release: match config.release {
                ReleaseModel::Periodic => Time::ZERO,
                ReleaseModel::Sporadic { max_delay, .. } => Time::new(j.next(max_delay)),
            },
            next_job: 0,
            active: None,
        })
        .collect();
    let mut prev_running: Vec<Option<usize>> = vec![None; n_proc];

    let mut tick = 0u64;
    while Time::new(tick) <= horizon {
        let now = Time::new(tick);

        // Releases at `now` (kill overrunning predecessors, as the
        // event-driven engine does).
        for (i, s) in st.iter_mut().enumerate() {
            if s.next_release != now {
                continue;
            }
            if let Some((job, released, _, _)) = s.active.take() {
                crate::engine::record_miss(&mut report, &chains[i], job, released, None);
            }
            s.active = Some((s.next_job, now, 0, chains[i].stages[0].wcet));
            s.next_job += 1;
            let extra = match config.release {
                ReleaseModel::Periodic => Time::ZERO,
                ReleaseModel::Sporadic { max_delay, .. } => Time::new(jitter[i].next(max_delay)),
            };
            s.next_release = now + chains[i].period + extra;
        }
        if config.stop_on_first_miss && !report.misses.is_empty() {
            return report;
        }
        if Time::new(tick) == horizon {
            break; // the horizon tick itself is not executed
        }

        // Pick the highest-priority ready stage per processor and run it
        // for one tick. (Chains are priority-sorted: first match wins.)
        let mut chosen: Vec<Option<usize>> = vec![None; n_proc];
        for (ci, (chain, s)) in chains.iter().zip(&st).enumerate() {
            if let Some((_, _, stage, _)) = s.active {
                let q = chain.stages[stage].processor;
                if chosen[q].is_none() {
                    chosen[q] = Some(ci);
                }
            }
        }
        for q in 0..n_proc {
            if let (Some(prev), Some(new)) = (prev_running[q], chosen[q]) {
                if prev != new && st[prev].active.is_some() {
                    report.preemptions += 1;
                }
            }
            prev_running[q] = chosen[q];
        }
        for ci in chosen.into_iter().flatten() {
            // Invariant: `chosen` is filled from chains with `active` jobs
            // whose current stage is on this processor.
            let (job, released, stage, remaining) =
                st[ci].active.expect("chosen chains are active");
            let remaining = remaining - Time::new(1);
            if !remaining.is_zero() {
                st[ci].active = Some((job, released, stage, remaining));
                continue;
            }
            // Stage complete at tick+1.
            let end = Time::new(tick + 1);
            if stage + 1 < chains[ci].stages.len() {
                st[ci].active = Some((job, released, stage + 1, chains[ci].stages[stage + 1].wcet));
            } else {
                st[ci].active = None;
                crate::engine::record_completion(&mut report, &chains[ci], released, end);
                if end > released + chains[ci].period {
                    crate::engine::record_miss(&mut report, &chains[ci], job, released, Some(end));
                }
                if config.stop_on_first_miss && !report.misses.is_empty() {
                    return report;
                }
            }
        }
        tick += 1;
    }

    for (i, s) in st.iter().enumerate() {
        if let Some((job, released, _, _)) = s.active {
            if released + chains[i].period <= horizon {
                crate::engine::record_miss(&mut report, &chains[i], job, released, None);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioned::simulate_partitioned;
    use proptest::prelude::*;
    use rmts_taskmodel::{Priority, SubtaskKind, Task};

    fn whole(id: u32, prio: u32, c: u64, t: u64) -> Subtask {
        Subtask::whole(&Task::from_ticks(id, c, t).unwrap(), Priority(prio))
    }

    #[test]
    fn agrees_on_textbook_set() {
        let w0 = vec![whole(0, 0, 1, 4), whole(1, 1, 2, 6), whole(2, 2, 3, 12)];
        let fast = simulate_partitioned(&[&w0], SimConfig::default());
        let slow = simulate_reference(&[&w0], SimConfig::default());
        assert_eq!(fast, slow);
    }

    #[test]
    fn agrees_on_split_chain() {
        let mut body = whole(0, 0, 2, 10);
        body.kind = SubtaskKind::Body(1);
        let mut tail = whole(0, 0, 2, 10);
        tail.seq = 2;
        tail.kind = SubtaskKind::Tail;
        tail.deadline = Time::new(8);
        let w0 = vec![body];
        let w1 = vec![tail, whole(1, 3, 5, 10)];
        let fast = simulate_partitioned(&[&w0, &w1], SimConfig::default());
        let slow = simulate_reference(&[&w0, &w1], SimConfig::default());
        assert_eq!(fast, slow);
    }

    #[test]
    fn agrees_on_overload_miss() {
        let w0 = vec![whole(0, 0, 3, 4), whole(1, 1, 3, 6)];
        for stop in [true, false] {
            let cfg = SimConfig {
                stop_on_first_miss: stop,
                ..SimConfig::default()
            };
            let fast = simulate_partitioned(&[&w0], cfg);
            let slow = simulate_reference(&[&w0], cfg);
            assert_eq!(fast.misses, slow.misses, "stop={stop}");
            assert_eq!(fast.max_response, slow.max_response, "stop={stop}");
        }
    }

    #[test]
    fn agrees_under_sporadic_releases() {
        let w0 = vec![whole(0, 0, 2, 7), whole(1, 1, 3, 11)];
        for seed in 0..10 {
            let cfg = SimConfig::sporadic(5, seed, Time::new(300));
            let fast = simulate_partitioned(&[&w0], cfg);
            let slow = simulate_reference(&[&w0], cfg);
            assert_eq!(fast, slow, "seed {seed}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Differential fuzzing: the event-driven engine and the tick-wise
        /// oracle agree exactly on random small systems, split chains
        /// included.
        #[test]
        fn event_driven_equals_tickwise(
            raw in proptest::collection::vec((1u64..5, 2u64..7, 0usize..2), 1..5),
            split_c in 2u64..6,
        ) {
            // Random whole tasks across two processors.
            let mut w0: Vec<Subtask> = Vec::new();
            let mut w1: Vec<Subtask> = Vec::new();
            for (i, &(c_seed, t_mul, proc)) in raw.iter().enumerate() {
                let t = 4 * t_mul;
                let c = 1 + c_seed % (t / 3).max(1);
                let s = whole(i as u32 + 1, i as u32 + 1, c, t);
                if proc == 0 { w0.push(s) } else { w1.push(s) }
            }
            // Plus one split task with the highest priority.
            let t_split = 20u64;
            let mut body = whole(0, 0, split_c / 2 + 1, t_split);
            body.kind = SubtaskKind::Body(1);
            let mut tail = whole(0, 0, split_c / 2 + 1, t_split);
            tail.seq = 2;
            tail.kind = SubtaskKind::Tail;
            tail.deadline = Time::new(t_split - (split_c / 2 + 1));
            w0.push(body);
            w1.push(tail);

            let cfg = SimConfig {
                horizon: Some(Time::new(400)),
                stop_on_first_miss: false,
                ..SimConfig::default()
            };
            let fast = simulate_partitioned(&[&w0, &w1], cfg);
            let slow = simulate_reference(&[&w0, &w1], cfg);
            prop_assert_eq!(&fast.misses, &slow.misses);
            prop_assert_eq!(&fast.max_response, &slow.max_response);
            prop_assert_eq!(fast.jobs_completed, slow.jobs_completed);
        }
    }
}
