//! Event-driven simulation of partitioned fixed-priority scheduling with
//! task splitting.
//!
//! Semantics (paper Section IV, "Scheduling at Run Time"):
//!
//! * every processor runs preemptive fixed-priority scheduling among the
//!   stages that are ready on it, with the tasks' **original** RM
//!   priorities;
//! * stage `k+1` of a job becomes ready the instant stage `k` completes
//!   (possibly on a different processor);
//! * jobs are released periodically from a synchronous start; the job of
//!   `τ_i` released at `r` must finish all stages by `r + T_i`.
//!
//! A job still incomplete when its successor is released is recorded as a
//! deadline miss; the stale job is then aborted so the model keeps its
//! one-active-job-per-task invariant (standard overrun-kill semantics).

use crate::check::{ReleaseModel, SimConfig, SimReport};
use crate::engine::{
    build_chains, horizon_for, record_completion, record_miss, ActiveJob, Jitter, JobState,
};
use crate::trace::{Segment, Trace};
use rmts_taskmodel::{Subtask, Time};

/// Simulates the given per-processor workloads. See module docs.
pub fn simulate_partitioned(workloads: &[&[Subtask]], config: SimConfig) -> SimReport {
    run(workloads, config, None)
}

/// Like [`simulate_partitioned`], but also records an execution [`Trace`]
/// (who ran where, when) for visualization and invariant checking.
pub fn simulate_partitioned_traced(
    workloads: &[&[Subtask]],
    config: SimConfig,
) -> (SimReport, Trace) {
    let mut trace = Trace::default();
    let report = run(workloads, config, Some(&mut trace));
    (report, trace)
}

/// Local event tallies, flushed to the [`rmts_obs`] recorder in one batch
/// when the simulation ends. Keeps the event loop free of per-event
/// recorder lookups: the only recurring obs call is the `sim.slack`
/// histogram sample, and [`rmts_obs::observe`] is a no-op unless a
/// recording is active.
#[derive(Default)]
struct SimTally {
    events: u64,
    releases: u64,
    completions: u64,
    preemptions: u64,
    migrations: u64,
}

impl SimTally {
    fn flush(&self) {
        if self.events != 0 && rmts_obs::enabled() {
            rmts_obs::count("sim.events", self.events);
            rmts_obs::count("sim.releases", self.releases);
            rmts_obs::count("sim.completions", self.completions);
            rmts_obs::count("sim.preemptions", self.preemptions);
            rmts_obs::count("sim.migrations", self.migrations);
        }
    }
}

fn run(workloads: &[&[Subtask]], config: SimConfig, mut trace: Option<&mut Trace>) -> SimReport {
    let mut tally = SimTally::default();
    let chains = build_chains(workloads);
    let horizon = horizon_for(&chains, config.horizon);
    let mut report = SimReport {
        horizon,
        ..SimReport::default()
    };
    if chains.is_empty() {
        return report;
    }
    let n_proc = workloads.len();
    let mut jobs: Vec<JobState> = chains.iter().map(|_| JobState::new()).collect();
    let mut jitter: Vec<Jitter> = chains
        .iter()
        .map(|c| match config.release {
            ReleaseModel::Periodic => Jitter::new(0, 0),
            ReleaseModel::Sporadic { seed, .. } => Jitter::new(seed, c.id.0 as u64),
        })
        .collect();
    // The first releases may already be jittered under the sporadic model.
    if let ReleaseModel::Sporadic { max_delay, .. } = config.release {
        for (j, job) in jitter.iter_mut().zip(&mut jobs) {
            job.next_release = Time::new(j.next(max_delay));
        }
    }
    // Which chain's stage is currently running on each processor (index
    // into `chains`), for preemption accounting.
    let mut running: Vec<Option<usize>> = vec![None; n_proc];
    // Open trace segments per processor: (chain, stage, start).
    let mut open: Vec<Option<(usize, usize, Time)>> = vec![None; n_proc];

    let mut now = Time::ZERO;
    loop {
        // The ready stage with the highest priority on each processor.
        // Chains are sorted by priority, so the smallest chain index wins.
        let mut top: Vec<Option<usize>> = vec![None; n_proc];
        for (ci, (chain, job)) in chains.iter().zip(&jobs).enumerate() {
            if let Some(active) = &job.active {
                let q = chain.stages[active.stage].processor;
                if top[q].is_none() {
                    top[q] = Some(ci);
                }
            }
        }
        // Preemption accounting: a processor switching to a different chain
        // while the previous one is still active counts as a preemption.
        for q in 0..n_proc {
            if let (Some(prev), Some(new)) = (running[q], top[q]) {
                if prev != new && jobs[prev].active.is_some() {
                    report.preemptions += 1;
                    tally.preemptions += 1;
                }
            }
            running[q] = top[q];
        }

        // Trace bookkeeping: close/open segments whenever the occupant of a
        // processor changes.
        if let Some(tr) = trace.as_deref_mut() {
            for q in 0..n_proc {
                let occupant = top[q].map(|ci| {
                    // Invariant: `top[q]` only ever holds chains selected
                    // from the ready set, whose `active` is `Some`.
                    let stage = jobs[ci].active.as_ref().expect("running is active").stage;
                    (ci, stage)
                });
                let open_ident = open[q].map(|(ci, st, _)| (ci, st));
                if occupant != open_ident {
                    if let Some((ci, stage, start)) = open[q].take() {
                        if start < now {
                            tr.segments.push(Segment {
                                processor: q,
                                task: chains[ci].id,
                                stage,
                                start,
                                end: now,
                            });
                        }
                    }
                    if let Some((ci, stage)) = occupant {
                        open[q] = Some((ci, stage, now));
                    }
                }
            }
        }

        // Next event: earliest stage completion or job release.
        let mut t_next = Time::MAX;
        for ci in top.iter().flatten() {
            // Invariant: see above — `top` holds ready (active) chains only.
            let rem = jobs[*ci]
                .active
                .as_ref()
                .expect("running is active")
                .remaining;
            t_next = t_next.min(now + rem);
        }
        for job in &jobs {
            t_next = t_next.min(job.next_release);
        }
        if t_next > horizon {
            // Uninterrupted execution continues to the horizon; close the
            // open trace segments there.
            if let Some(tr) = trace.as_deref_mut() {
                close_open(tr, &chains, &mut open, horizon);
            }
            break;
        }
        tally.events += 1;
        let dt = t_next - now;

        // Advance the running stages.
        if !dt.is_zero() {
            for ci in top.iter().flatten() {
                // Invariant: see above — `top` holds active chains only.
                let active = jobs[*ci].active.as_mut().expect("running is active");
                active.remaining = active.remaining.saturating_sub(dt);
            }
        }
        now = t_next;

        // Stage completions at `now`.
        for ci in 0..chains.len() {
            let chain = &chains[ci];
            let Some(active) = jobs[ci].active else {
                continue;
            };
            if !active.remaining.is_zero() {
                continue;
            }
            // Only a stage that was actually running can have drained.
            let q = chain.stages[active.stage].processor;
            if top[q] != Some(ci) {
                continue;
            }
            if active.stage + 1 < chain.stages.len() {
                // Precedence: hand over to the next stage.
                if chain.stages[active.stage + 1].processor != chain.stages[active.stage].processor
                {
                    tally.migrations += 1;
                }
                jobs[ci].active = Some(ActiveJob {
                    stage: active.stage + 1,
                    remaining: chain.stages[active.stage + 1].wcet,
                    ..active
                });
            } else {
                jobs[ci].active = None;
                tally.completions += 1;
                record_completion(&mut report, chain, active.released, now);
                let deadline = active.released + chain.period;
                if now > deadline {
                    record_miss(&mut report, chain, active.job, active.released, Some(now));
                } else {
                    rmts_obs::observe("sim.slack", (deadline - now).ticks());
                }
            }
        }
        if config.stop_on_first_miss && !report.misses.is_empty() {
            if let Some(tr) = trace.as_deref_mut() {
                close_open(tr, &chains, &mut open, now);
            }
            tally.flush();
            return report;
        }

        // Releases at `now`.
        for ci in 0..chains.len() {
            if jobs[ci].next_release != now {
                continue;
            }
            let chain = &chains[ci];
            if let Some(stale) = jobs[ci].active.take() {
                // Previous job overran its period: deadline miss; abort it.
                record_miss(&mut report, chain, stale.job, stale.released, None);
            }
            let job_idx = jobs[ci].next_job;
            jobs[ci].active = Some(ActiveJob {
                job: job_idx,
                released: now,
                stage: 0,
                remaining: chain.stages[0].wcet,
            });
            jobs[ci].next_job += 1;
            tally.releases += 1;
            let extra = match config.release {
                ReleaseModel::Periodic => Time::ZERO,
                ReleaseModel::Sporadic { max_delay, .. } => Time::new(jitter[ci].next(max_delay)),
            };
            jobs[ci].next_release = now + chain.period + extra;
        }
        if config.stop_on_first_miss && !report.misses.is_empty() {
            if let Some(tr) = trace.as_deref_mut() {
                close_open(tr, &chains, &mut open, now);
            }
            tally.flush();
            return report;
        }
    }

    // Audit jobs whose deadlines fell inside the horizon but never finished.
    for (ci, job) in jobs.iter().enumerate() {
        if let Some(active) = &job.active {
            let deadline = active.released + chains[ci].period;
            if deadline <= horizon {
                record_miss(&mut report, &chains[ci], active.job, active.released, None);
            }
        }
    }
    tally.flush();
    report
}

/// Closes every open trace segment at `end`.
fn close_open(
    trace: &mut Trace,
    chains: &[crate::engine::TaskChain],
    open: &mut [Option<(usize, usize, Time)>],
    end: Time,
) {
    for (q, slot) in open.iter_mut().enumerate() {
        if let Some((ci, stage, start)) = slot.take() {
            if start < end {
                trace.segments.push(Segment {
                    processor: q,
                    task: chains[ci].id,
                    stage,
                    start,
                    end,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmts_taskmodel::{Priority, Subtask, SubtaskKind, Task, TaskId};

    fn whole(id: u32, prio: u32, c: u64, t: u64) -> Subtask {
        Subtask::whole(&Task::from_ticks(id, c, t).unwrap(), Priority(prio))
    }

    #[test]
    fn single_task_single_processor() {
        let w0 = vec![whole(0, 0, 3, 10)];
        let report = simulate_partitioned(&[&w0], SimConfig::default());
        assert!(report.all_deadlines_met());
        assert_eq!(report.horizon, Time::new(10));
        assert_eq!(report.jobs_completed, 1);
        assert_eq!(report.response_of(TaskId(0)), Some(Time::new(3)));
    }

    #[test]
    fn textbook_uniprocessor_responses_match_rta() {
        let w0 = vec![whole(0, 0, 1, 4), whole(1, 1, 2, 6), whole(2, 2, 3, 12)];
        let report = simulate_partitioned(&[&w0], SimConfig::default());
        assert!(report.all_deadlines_met());
        // Synchronous release = critical instant: observed equals RTA.
        assert_eq!(report.response_of(TaskId(0)), Some(Time::new(1)));
        assert_eq!(report.response_of(TaskId(1)), Some(Time::new(3)));
        assert_eq!(report.response_of(TaskId(2)), Some(Time::new(10)));
        // Hyperperiod 12: 3 + 2 + 1 jobs.
        assert_eq!(report.jobs_completed, 6);
        // Distribution stats: τ0's three jobs all take exactly 1 tick; τ2's
        // single job is the 10-tick worst case.
        let s0 = report.stats_of(TaskId(0)).unwrap();
        assert_eq!((s0.min, s0.max, s0.count), (Time::new(1), Time::new(1), 3));
        let s2 = report.stats_of(TaskId(2)).unwrap();
        assert_eq!(s2.count, 1);
        assert_eq!(s2.mean(), 10.0);
    }

    #[test]
    fn overload_misses() {
        let w0 = vec![whole(0, 0, 3, 4), whole(1, 1, 3, 6)];
        let report = simulate_partitioned(&[&w0], SimConfig::default());
        assert!(!report.all_deadlines_met());
        assert_eq!(report.misses[0].task, TaskId(1));
    }

    #[test]
    fn collect_all_misses_when_configured() {
        let w0 = vec![whole(0, 0, 3, 4), whole(1, 1, 3, 6)];
        let config = SimConfig {
            stop_on_first_miss: false,
            ..SimConfig::default()
        };
        let report = simulate_partitioned(&[&w0], config);
        assert!(report.misses.len() >= 2);
    }

    #[test]
    fn split_task_respects_precedence() {
        // τ0 split: body (2 ticks) on P0, tail (2 ticks) on P1; a hog on P1
        // with *lower* priority cannot delay the tail. Tail becomes ready
        // at t = 2, so completion at t = 4: response 4.
        let mut body = whole(0, 0, 2, 10);
        body.kind = SubtaskKind::Body(1);
        let mut tail = whole(0, 0, 2, 10);
        tail.seq = 2;
        tail.kind = SubtaskKind::Tail;
        tail.deadline = Time::new(8);
        let w0 = vec![body];
        let w1 = vec![tail, whole(1, 3, 5, 10)];
        let report = simulate_partitioned(&[&w0, &w1], SimConfig::default());
        assert!(report.all_deadlines_met());
        assert_eq!(report.response_of(TaskId(0)), Some(Time::new(4)));
        // The hog is preempted by the tail's arrival at t = 2 and still
        // finishes: 5 ticks of work in [0,2) ∪ [4,7): response 7.
        assert_eq!(report.response_of(TaskId(1)), Some(Time::new(7)));
        assert!(report.preemptions >= 1);
    }

    #[test]
    fn tail_waits_even_when_its_processor_is_idle() {
        // Body (4 ticks) on busy P0; tail on empty P1 must still wait for
        // the body: response = 4 (body) + 1 (tail) = 5.
        let mut body = whole(0, 1, 4, 20);
        body.kind = SubtaskKind::Body(1);
        let mut tail = whole(0, 1, 1, 20);
        tail.seq = 2;
        tail.kind = SubtaskKind::Tail;
        let w0 = vec![body, whole(1, 0, 2, 20)]; // higher-priority hog on P0
        let w1 = vec![tail];
        let report = simulate_partitioned(&[&w0, &w1], SimConfig::default());
        assert!(report.all_deadlines_met());
        // Body runs [2,6) after the hog [0,2); tail [6,7): response 7.
        assert_eq!(report.response_of(TaskId(0)), Some(Time::new(7)));
    }

    #[test]
    fn full_utilization_harmonic_meets_every_deadline() {
        let w0 = vec![whole(0, 0, 2, 4), whole(1, 1, 2, 8), whole(2, 2, 2, 8)];
        let report = simulate_partitioned(&[&w0], SimConfig::default());
        assert!(report.all_deadlines_met());
        // U = 1.0: the processor is never idle over the hyperperiod, and
        // the lowest-priority task finishes exactly at its deadline.
        assert_eq!(report.response_of(TaskId(2)), Some(Time::new(8)));
    }

    #[test]
    fn parallel_processors_do_not_interfere() {
        let w0 = vec![whole(0, 0, 3, 4)];
        let w1 = vec![whole(1, 1, 5, 6)];
        let report = simulate_partitioned(&[&w0, &w1], SimConfig::default());
        assert!(report.all_deadlines_met());
        assert_eq!(report.response_of(TaskId(0)), Some(Time::new(3)));
        assert_eq!(report.response_of(TaskId(1)), Some(Time::new(5)));
    }

    #[test]
    fn empty_system() {
        let report = simulate_partitioned(&[], SimConfig::default());
        assert!(report.all_deadlines_met());
        assert_eq!(report.jobs_completed, 0);
    }

    #[test]
    fn trace_records_execution() {
        let w0 = vec![whole(0, 0, 1, 4), whole(1, 1, 2, 6)];
        let (report, trace) = simulate_partitioned_traced(&[&w0], SimConfig::default());
        assert!(report.all_deadlines_met());
        // Busy time equals the total executed work over the hyperperiod 12:
        // 3 jobs of τ0 (1 tick) + 2 jobs of τ1 (2 ticks) = 7.
        assert_eq!(trace.busy_time(0), Time::new(7));
        assert!(trace.no_self_overlap());
        // τ1's first job is preempted by τ0's second release at t = 4:
        // segments [1,4) and [4,5)? No — τ1 runs [1,3) uninterrupted.
        let t1 = trace.of_task(TaskId(1));
        assert_eq!(t1[0].start, Time::new(1));
    }

    #[test]
    fn trace_shows_split_task_migrating() {
        let mut body = whole(0, 0, 2, 10);
        body.kind = SubtaskKind::Body(1);
        let mut tail = whole(0, 0, 2, 10);
        tail.seq = 2;
        tail.kind = SubtaskKind::Tail;
        tail.deadline = Time::new(8);
        let w0 = vec![body];
        let w1 = vec![tail, whole(1, 3, 5, 10)];
        let (report, trace) = simulate_partitioned_traced(&[&w0, &w1], SimConfig::default());
        assert!(report.all_deadlines_met());
        // τ0's job: stage 0 on P0 for [0,2), stage 1 on P1 for [2,4).
        let segs = trace.of_task(TaskId(0));
        assert_eq!(segs[0].processor, 0);
        assert_eq!(segs[0].end, Time::new(2));
        assert_eq!(segs[1].processor, 1);
        assert_eq!(segs[1].start, Time::new(2));
        assert!(trace.no_self_overlap());
        // The Gantt chart renders without panicking and shows both rows.
        let g = trace.gantt(2, report.horizon, 40);
        assert!(g.contains("P0 |") && g.contains("P1 |"));
    }

    #[test]
    fn traced_and_untraced_reports_agree() {
        let w0 = vec![whole(0, 0, 2, 4), whole(1, 1, 2, 8), whole(2, 2, 2, 8)];
        let plain = simulate_partitioned(&[&w0], SimConfig::default());
        let (traced, trace) = simulate_partitioned_traced(&[&w0], SimConfig::default());
        assert_eq!(plain, traced);
        // Full utilization: the processor is busy for the whole hyperperiod.
        assert_eq!(trace.busy_time(0), traced.horizon);
    }

    #[test]
    fn recording_captures_event_counters() {
        let w0 = vec![whole(0, 0, 1, 4), whole(1, 1, 2, 6)];
        let (report, snap) =
            rmts_obs::record(|| simulate_partitioned(&[&w0], SimConfig::default()));
        assert!(report.all_deadlines_met());
        // Hyperperiod 12: 3 jobs of τ0 + 2 jobs of τ1 complete; the
        // releases at t = 12 (the horizon itself) are also counted.
        assert_eq!(snap.counter("sim.releases"), 7);
        assert_eq!(snap.counter("sim.completions"), 5);
        assert!(snap.counter("sim.events") >= 5);
        let slack = snap.histogram("sim.slack").expect("slack histogram");
        assert_eq!(slack.count, 5);
        // τ0's jobs finish 1 tick after release: slack 3 each; all slacks
        // are positive and bounded by the longest period.
        assert!(slack.min >= 1 && slack.max <= 6);
    }

    #[test]
    fn recording_counts_migrations_of_split_tasks() {
        let mut body = whole(0, 0, 2, 10);
        body.kind = SubtaskKind::Body(1);
        let mut tail = whole(0, 0, 2, 10);
        tail.seq = 2;
        tail.kind = SubtaskKind::Tail;
        tail.deadline = Time::new(8);
        let w0 = vec![body];
        let w1 = vec![tail, whole(1, 3, 5, 10)];
        let (report, snap) =
            rmts_obs::record(|| simulate_partitioned(&[&w0, &w1], SimConfig::default()));
        assert!(report.all_deadlines_met());
        // τ0's single job hands over from P0 to P1 exactly once.
        assert_eq!(snap.counter("sim.migrations"), 1);
        assert_eq!(snap.counter("sim.preemptions"), report.preemptions);
    }

    #[test]
    fn custom_horizon_limits_jobs() {
        let w0 = vec![whole(0, 0, 1, 4)];
        let config = SimConfig {
            horizon: Some(Time::new(40)),
            ..SimConfig::default()
        };
        let report = simulate_partitioned(&[&w0], config);
        assert_eq!(report.jobs_completed, 10);
    }
}
