//! Shared simulation plumbing: task chains, horizons, job bookkeeping.

use crate::check::{DeadlineMiss, SimReport, DEFAULT_HORIZON_CAP};
use rmts_taskmodel::time::checked_lcm;
use rmts_taskmodel::{AnalysisError, Priority, Subtask, TaskId, Time};

/// One stage of a task's execution: a subtask pinned to a processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stage {
    /// Host processor.
    pub processor: usize,
    /// Execution budget of this stage.
    pub wcet: Time,
}

/// The execution chain of one task: its subtasks in precedence order with
/// their host processors, plus period and priority.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskChain {
    /// The task.
    pub id: TaskId,
    /// Period (= relative deadline).
    pub period: Time,
    /// Global RM priority.
    pub priority: Priority,
    /// Stages in precedence order (`τ^1 … τ^B, τ^t`).
    pub stages: Vec<Stage>,
}

impl TaskChain {
    /// Total execution time across stages.
    pub fn total_wcet(&self) -> Time {
        self.stages.iter().map(|s| s.wcet).sum()
    }
}

/// Reconstructs task chains from per-processor workloads. Subtasks of the
/// same parent are linked by their `seq` numbers; the result is sorted by
/// priority (highest first).
///
/// # Panics
///
/// Panics if the workloads are inconsistent: duplicate `(parent, seq)`,
/// gaps in a chain, or differing periods/priorities within one parent.
pub fn build_chains(workloads: &[&[Subtask]]) -> Vec<TaskChain> {
    use std::collections::BTreeMap;
    let mut by_parent: BTreeMap<u32, Vec<(u32, usize, &Subtask)>> = BTreeMap::new();
    for (q, w) in workloads.iter().enumerate() {
        for s in *w {
            by_parent.entry(s.parent.0).or_default().push((s.seq, q, s));
        }
    }
    let mut chains = Vec::with_capacity(by_parent.len());
    for (id, mut parts) in by_parent {
        parts.sort_by_key(|&(seq, _, _)| seq);
        let first = parts[0].2;
        for (i, &(seq, _, s)) in parts.iter().enumerate() {
            assert_eq!(
                seq as usize,
                i + 1,
                "task {id}: subtask chain has gaps or duplicates"
            );
            assert_eq!(s.period, first.period, "task {id}: inconsistent periods");
            assert_eq!(
                s.priority, first.priority,
                "task {id}: inconsistent priorities"
            );
        }
        chains.push(TaskChain {
            id: TaskId(id),
            period: first.period,
            priority: first.priority,
            stages: parts
                .iter()
                .map(|&(_, q, s)| Stage {
                    processor: q,
                    wcet: s.wcet,
                })
                .collect(),
        });
    }
    chains.sort_by_key(|c| c.priority);
    chains
}

/// The exact hyperperiod of the chains, or `None` on `u64` overflow
/// (adversarial coprime periods).
pub fn checked_hyperperiod_of(chains: &[TaskChain]) -> Option<Time> {
    chains
        .iter()
        .try_fold(1u64, |acc, c| checked_lcm(acc, c.period.ticks()))
        .map(Time::new)
}

/// The simulation horizon: one hyperperiod of the chains, capped at
/// [`DEFAULT_HORIZON_CAP`]. When the exact hyperperiod overflows `u64`
/// the cap is used — an *explicit* fallback (counted as
/// `sim.horizon.capped`, with overflow additionally flagged as
/// `sim.horizon.overflowed`) rather than a silently saturated `lcm`.
/// Callers that must not settle for a partial horizon use
/// [`checked_horizon_for`] instead.
pub fn horizon_for(chains: &[TaskChain], requested: Option<Time>) -> Time {
    if let Some(h) = requested {
        return h;
    }
    match checked_hyperperiod_of(chains) {
        Some(hyper) if hyper.ticks() <= DEFAULT_HORIZON_CAP => hyper,
        overflow_or_huge => {
            if overflow_or_huge.is_none() {
                rmts_obs::count("sim.horizon.overflowed", 1);
            }
            rmts_obs::count("sim.horizon.capped", 1);
            Time::new(DEFAULT_HORIZON_CAP)
        }
    }
}

/// Strict horizon selection: the requested horizon, or the exact
/// hyperperiod if it fits in `u64`, else a typed
/// [`AnalysisError::HorizonOverflow`] naming the cap a caller would have
/// to settle for. Use this when "one full hyperperiod" is a soundness
/// requirement, not a convenience.
pub fn checked_horizon_for(
    chains: &[TaskChain],
    requested: Option<Time>,
) -> Result<Time, AnalysisError> {
    if let Some(h) = requested {
        return Ok(h);
    }
    checked_hyperperiod_of(chains).ok_or(AnalysisError::HorizonOverflow {
        cap: DEFAULT_HORIZON_CAP,
    })
}

/// Mutable per-task job state during a run.
#[derive(Debug, Clone)]
pub struct JobState {
    /// Next release instant.
    pub next_release: Time,
    /// 0-based index of the job released next.
    pub next_job: u64,
    /// The active job, if any: (job index, release time, current stage,
    /// remaining budget of that stage).
    pub active: Option<ActiveJob>,
}

/// The in-flight job of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveJob {
    /// 0-based job index.
    pub job: u64,
    /// Release instant.
    pub released: Time,
    /// Index into the chain's `stages`.
    pub stage: usize,
    /// Remaining budget of the current stage.
    pub remaining: Time,
}

impl JobState {
    /// Initial state: first release at time 0.
    pub fn new() -> Self {
        JobState {
            next_release: Time::ZERO,
            next_job: 0,
            active: None,
        }
    }
}

impl Default for JobState {
    fn default() -> Self {
        Self::new()
    }
}

/// SplitMix64 step — the simulator's deterministic jitter source (keeps
/// `rmts-sim` free of external RNG dependencies).
#[derive(Debug, Clone, Copy)]
pub struct Jitter(u64);

impl Jitter {
    /// One stream per (seed, task id).
    pub fn new(seed: u64, task: u64) -> Jitter {
        Jitter(seed ^ task.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5851_F42D_4C95_7F2D)
    }

    /// The next delay in `[0, max]`.
    pub fn next(&mut self, max: u64) -> u64 {
        if max == 0 {
            return 0;
        }
        let mut z = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.0 = z;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) % (max + 1)
    }
}

/// Records a completed job in the report.
pub fn record_completion(report: &mut SimReport, chain: &TaskChain, released: Time, now: Time) {
    report.jobs_completed += 1;
    let response = now - released;
    report
        .max_response
        .entry(chain.id.0)
        .and_modify(|r| *r = (*r).max(response))
        .or_insert(response);
    report
        .response_stats
        .entry(chain.id.0)
        .and_modify(|s| s.record(response))
        .or_insert_with(|| crate::check::ResponseStats::first(response));
}

/// Records a deadline miss (a job still incomplete at its deadline).
pub fn record_miss(
    report: &mut SimReport,
    chain: &TaskChain,
    job: u64,
    released: Time,
    completed_at: Option<Time>,
) {
    report.misses.push(DeadlineMiss {
        task: chain.id,
        job,
        deadline: released + chain.period,
        completed_at,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmts_taskmodel::{SubtaskKind, Task};

    fn whole(id: u32, prio: u32, c: u64, t: u64) -> Subtask {
        Subtask::whole(&Task::from_ticks(id, c, t).unwrap(), Priority(prio))
    }

    #[test]
    fn chains_from_whole_tasks() {
        let w0 = vec![whole(0, 0, 1, 4)];
        let w1 = vec![whole(1, 1, 2, 8)];
        let chains = build_chains(&[&w0, &w1]);
        assert_eq!(chains.len(), 2);
        assert_eq!(chains[0].id, TaskId(0));
        assert_eq!(chains[0].stages.len(), 1);
        assert_eq!(chains[0].stages[0].processor, 0);
        assert_eq!(chains[1].stages[0].processor, 1);
    }

    #[test]
    fn chains_link_split_subtasks_across_processors() {
        let mut body = whole(7, 2, 3, 10);
        body.seq = 1;
        body.kind = SubtaskKind::Body(1);
        let mut tail = whole(7, 2, 2, 10);
        tail.seq = 2;
        tail.kind = SubtaskKind::Tail;
        tail.deadline = Time::new(7);
        let w0 = vec![body];
        let w1 = vec![tail];
        let chains = build_chains(&[&w0, &w1]);
        assert_eq!(chains.len(), 1);
        let c = &chains[0];
        assert_eq!(c.stages.len(), 2);
        assert_eq!(c.stages[0].processor, 0);
        assert_eq!(c.stages[1].processor, 1);
        assert_eq!(c.total_wcet(), Time::new(5));
    }

    #[test]
    #[should_panic(expected = "gaps")]
    fn chain_gaps_rejected() {
        let mut tail = whole(7, 2, 2, 10);
        tail.seq = 3; // missing seq 2
        let mut body = whole(7, 2, 3, 10);
        body.seq = 1;
        let w0 = vec![body, tail];
        let _ = build_chains(&[&w0]);
    }

    #[test]
    fn chains_sorted_by_priority() {
        let w0 = vec![whole(5, 9, 1, 40), whole(2, 0, 1, 4)];
        let chains = build_chains(&[&w0]);
        assert_eq!(chains[0].id, TaskId(2));
        assert_eq!(chains[1].id, TaskId(5));
    }

    #[test]
    fn horizon_is_hyperperiod() {
        let w0 = vec![whole(0, 0, 1, 6), whole(1, 1, 1, 10)];
        let chains = build_chains(&[&w0]);
        assert_eq!(horizon_for(&chains, None), Time::new(30));
        assert_eq!(horizon_for(&chains, Some(Time::new(99))), Time::new(99));
    }

    #[test]
    fn horizon_capped() {
        let w0 = vec![
            whole(0, 0, 1, 999_999_937), // large prime
            whole(1, 1, 1, 999_999_893),
        ];
        let chains = build_chains(&[&w0]);
        assert_eq!(horizon_for(&chains, None), Time::new(DEFAULT_HORIZON_CAP));
    }

    /// Three large pairwise-coprime periods whose lcm overflows `u64`.
    fn overflow_chains() -> Vec<TaskChain> {
        let w0 = vec![
            whole(0, 0, 1, 999_999_937),
            whole(1, 1, 1, 999_999_893),
            whole(2, 2, 1, 999_999_883),
        ];
        build_chains(&[&w0])
    }

    #[test]
    fn hyperperiod_overflow_detected_and_capped_loudly() {
        let chains = overflow_chains();
        assert_eq!(checked_hyperperiod_of(&chains), None);
        // The permissive selector falls back to the cap, and says so.
        let rec = rmts_obs::Recording::start();
        assert_eq!(horizon_for(&chains, None), Time::new(DEFAULT_HORIZON_CAP));
        let snap = rec.finish();
        assert_eq!(snap.counter("sim.horizon.capped"), 1);
        assert_eq!(snap.counter("sim.horizon.overflowed"), 1);
    }

    #[test]
    fn checked_horizon_returns_typed_overflow() {
        let chains = overflow_chains();
        assert_eq!(
            checked_horizon_for(&chains, None),
            Err(AnalysisError::HorizonOverflow {
                cap: DEFAULT_HORIZON_CAP
            })
        );
        // An explicit request is honored regardless of the hyperperiod.
        assert_eq!(
            checked_horizon_for(&chains, Some(Time::new(64))),
            Ok(Time::new(64))
        );
        // A merely *huge* (non-overflowing) hyperperiod is still exact.
        let w0 = vec![whole(0, 0, 1, 999_999_937), whole(1, 1, 1, 2)];
        let big = build_chains(&[&w0]);
        assert_eq!(
            checked_horizon_for(&big, None),
            Ok(Time::new(2 * 999_999_937))
        );
    }
}
