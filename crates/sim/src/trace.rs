//! Execution traces and ASCII Gantt rendering.
//!
//! The partitioned simulator can record which (sub)task occupied each
//! processor over time. Traces make splitting *visible*: a split task's
//! job appears as consecutive segments hopping across processors, never
//! overlapping in time (the precedence constraint of paper Fig. 1).

use rmts_taskmodel::{TaskId, Time};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One contiguous execution interval of a task's stage on a processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Host processor.
    pub processor: usize,
    /// Executing task.
    pub task: TaskId,
    /// 0-based index of the stage within the task's subtask chain.
    pub stage: usize,
    /// Segment start (inclusive).
    pub start: Time,
    /// Segment end (exclusive).
    pub end: Time,
}

impl Segment {
    /// Length of the segment.
    pub fn len(&self) -> Time {
        self.end - self.start
    }

    /// `true` for degenerate zero-length segments (never recorded).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A recorded execution trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Trace {
    /// Segments in completion order.
    pub segments: Vec<Segment>,
}

impl Trace {
    /// Total busy time of one processor.
    pub fn busy_time(&self, processor: usize) -> Time {
        self.segments
            .iter()
            .filter(|s| s.processor == processor)
            .map(Segment::len)
            .sum()
    }

    /// All segments of one task, in time order.
    pub fn of_task(&self, task: TaskId) -> Vec<Segment> {
        let mut v: Vec<Segment> = self
            .segments
            .iter()
            .copied()
            .filter(|s| s.task == task)
            .collect();
        v.sort_by_key(|s| s.start);
        v
    }

    /// `true` iff no two segments of the same task overlap in time — the
    /// correctness invariant of sequential task splitting (a job's stages
    /// may migrate but never run in parallel with themselves).
    pub fn no_self_overlap(&self) -> bool {
        use std::collections::BTreeMap;
        let mut per_task: BTreeMap<u32, Vec<(Time, Time)>> = BTreeMap::new();
        for s in &self.segments {
            per_task.entry(s.task.0).or_default().push((s.start, s.end));
        }
        for intervals in per_task.values_mut() {
            intervals.sort();
            for w in intervals.windows(2) {
                if w[1].0 < w[0].1 {
                    return false;
                }
            }
        }
        true
    }

    /// Renders an ASCII Gantt chart: one row per processor, time mapped to
    /// `width` columns over `[0, horizon]`. Tasks are labelled `0-9a-z`
    /// (id mod 36); idle time is `·`.
    pub fn gantt(&self, n_processors: usize, horizon: Time, width: usize) -> String {
        assert!(width > 0 && !horizon.is_zero());
        let mut out = String::new();
        let scale = horizon.ticks() as f64 / width as f64;
        for q in 0..n_processors {
            let mut row = vec!['·'; width];
            for s in self.segments.iter().filter(|s| s.processor == q) {
                let a = ((s.start.ticks() as f64 / scale) as usize).min(width - 1);
                let b = ((s.end.ticks() as f64 / scale).ceil() as usize).clamp(a + 1, width);
                let label = Self::label(s.task);
                for cell in &mut row[a..b] {
                    *cell = label;
                }
            }
            let _ = writeln!(out, "P{q} |{}|", row.into_iter().collect::<String>());
        }
        let _ = writeln!(out, "    0{:>w$}", horizon, w = width);
        out
    }

    fn label(task: TaskId) -> char {
        const SYMS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyz";
        SYMS[(task.0 as usize) % SYMS.len()] as char
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(q: usize, task: u32, start: u64, end: u64) -> Segment {
        Segment {
            processor: q,
            task: TaskId(task),
            stage: 0,
            start: Time::new(start),
            end: Time::new(end),
        }
    }

    #[test]
    fn busy_time_sums_per_processor() {
        let t = Trace {
            segments: vec![seg(0, 1, 0, 3), seg(0, 2, 5, 9), seg(1, 1, 3, 4)],
        };
        assert_eq!(t.busy_time(0), Time::new(7));
        assert_eq!(t.busy_time(1), Time::new(1));
        assert_eq!(t.busy_time(2), Time::ZERO);
    }

    #[test]
    fn self_overlap_detection() {
        let ok = Trace {
            segments: vec![seg(0, 1, 0, 3), seg(1, 1, 3, 5)],
        };
        assert!(ok.no_self_overlap());
        let bad = Trace {
            segments: vec![seg(0, 1, 0, 3), seg(1, 1, 2, 5)],
        };
        assert!(!bad.no_self_overlap());
        // Touching intervals are fine (end exclusive).
        let touch = Trace {
            segments: vec![seg(0, 1, 0, 3), seg(1, 1, 3, 3 + 1)],
        };
        assert!(touch.no_self_overlap());
    }

    #[test]
    fn of_task_sorted() {
        let t = Trace {
            segments: vec![seg(1, 7, 5, 6), seg(0, 7, 0, 2), seg(0, 9, 2, 5)],
        };
        let v = t.of_task(TaskId(7));
        assert_eq!(v.len(), 2);
        assert!(v[0].start < v[1].start);
    }

    #[test]
    fn gantt_renders_rows() {
        let t = Trace {
            segments: vec![seg(0, 1, 0, 5), seg(1, 11, 5, 10)],
        };
        let g = t.gantt(2, Time::new(10), 10);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("P0 |11111"));
        assert!(lines[1].contains("bbbbb|")); // 11 mod 36 → 'b'
        assert!(lines[0].contains('·'));
    }
}
