//! Simulation configuration and reporting.

use rmts_taskmodel::{TaskId, Time};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Default cap on the simulation horizon (ticks) when the hyperperiod is
/// enormous. 100 million ticks ≈ 100 s of simulated time at 1 µs ticks.
pub const DEFAULT_HORIZON_CAP: u64 = 100_000_000;

/// How job releases are spaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ReleaseModel {
    /// Strictly periodic from a synchronous start — the pessimistic
    /// arrival pattern for the sporadic model (critical instant).
    #[default]
    Periodic,
    /// Sporadic: each release is delayed by a deterministic pseudo-random
    /// amount in `[0, max_delay]` beyond the minimum separation `T`.
    /// Absolute deadlines remain `release + T`.
    Sporadic {
        /// Maximum extra inter-release delay (ticks).
        max_delay: u64,
        /// Seed for the per-task delay streams (runs are reproducible).
        seed: u64,
    },
}

/// Simulation options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Simulate up to this time. `None` = one hyperperiod, capped at
    /// [`DEFAULT_HORIZON_CAP`].
    pub horizon: Option<Time>,
    /// Stop at the first deadline miss (default) or keep going and collect
    /// all misses within the horizon.
    pub stop_on_first_miss: bool,
    /// Release spacing (periodic by default).
    pub release: ReleaseModel,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            horizon: None,
            stop_on_first_miss: true,
            release: ReleaseModel::Periodic,
        }
    }
}

impl SimConfig {
    /// A sporadic-release configuration with the given maximum extra delay
    /// and seed. With sporadic releases the hyperperiod is no longer a
    /// natural horizon, so pass an explicit one or accept the default cap.
    pub fn sporadic(max_delay: u64, seed: u64, horizon: Time) -> Self {
        SimConfig {
            horizon: Some(horizon),
            stop_on_first_miss: true,
            release: ReleaseModel::Sporadic { max_delay, seed },
        }
    }
}

/// One observed deadline miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeadlineMiss {
    /// The task whose job missed.
    pub task: TaskId,
    /// 0-based job index (release at `job · T`).
    pub job: u64,
    /// The absolute deadline that was missed.
    pub deadline: Time,
    /// Completion time, if the job did complete late within the horizon.
    pub completed_at: Option<Time>,
}

/// Aggregated response-time statistics of one task over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResponseStats {
    /// Smallest observed response time.
    pub min: Time,
    /// Largest observed response time.
    pub max: Time,
    /// Sum of all response times (for the mean).
    pub sum: Time,
    /// Number of completed jobs.
    pub count: u64,
}

impl ResponseStats {
    /// Starts the statistics with a first observation.
    pub fn first(r: Time) -> Self {
        ResponseStats {
            min: r,
            max: r,
            sum: r,
            count: 1,
        }
    }

    /// Folds in another observation.
    pub fn record(&mut self, r: Time) {
        self.min = self.min.min(r);
        self.max = self.max.max(r);
        self.sum = self.sum.saturating_add(r);
        self.count += 1;
    }

    /// Mean response time in ticks.
    pub fn mean(&self) -> f64 {
        self.sum.ticks() as f64 / self.count.max(1) as f64
    }
}

/// The outcome of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SimReport {
    /// The horizon actually simulated.
    pub horizon: Time,
    /// Deadline misses observed (first one only if `stop_on_first_miss`).
    pub misses: Vec<DeadlineMiss>,
    /// Number of jobs that completed within the horizon.
    pub jobs_completed: u64,
    /// Largest observed response time (completion − release) per task.
    pub max_response: BTreeMap<u32, Time>,
    /// Full response-time statistics per task (min/mean/max over all
    /// completed jobs).
    pub response_stats: BTreeMap<u32, ResponseStats>,
    /// Number of preemptions observed across all processors.
    pub preemptions: u64,
}

impl SimReport {
    /// `true` iff no deadline was missed.
    pub fn all_deadlines_met(&self) -> bool {
        self.misses.is_empty()
    }

    /// Max observed response time of one task, if it completed any job.
    pub fn response_of(&self, task: TaskId) -> Option<Time> {
        self.max_response.get(&task.0).copied()
    }

    /// Response statistics of one task, if it completed any job.
    pub fn stats_of(&self, task: TaskId) -> Option<&ResponseStats> {
        self.response_stats.get(&task.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config() {
        let c = SimConfig::default();
        assert!(c.horizon.is_none());
        assert!(c.stop_on_first_miss);
    }

    #[test]
    fn response_stats_fold() {
        let mut s = ResponseStats::first(Time::new(5));
        s.record(Time::new(3));
        s.record(Time::new(10));
        assert_eq!(s.min, Time::new(3));
        assert_eq!(s.max, Time::new(10));
        assert_eq!(s.count, 3);
        assert!((s.mean() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn report_queries() {
        let mut r = SimReport::default();
        assert!(r.all_deadlines_met());
        r.max_response.insert(3, Time::new(7));
        assert_eq!(r.response_of(TaskId(3)), Some(Time::new(7)));
        assert_eq!(r.response_of(TaskId(4)), None);
        r.misses.push(DeadlineMiss {
            task: TaskId(1),
            job: 0,
            deadline: Time::new(10),
            completed_at: None,
        });
        assert!(!r.all_deadlines_met());
    }
}
