//! # `rmts-sim` — discrete-event scheduling simulator
//!
//! The analysis crates *prove* schedulability; this crate *executes* it.
//! It provides an event-driven simulator for:
//!
//! * **Partitioned fixed-priority scheduling with task splitting**
//!   ([`simulate_partitioned`]): each processor runs preemptive
//!   fixed-priority scheduling with the tasks' original RM priorities; the
//!   subtasks of a split task respect their cross-processor precedence
//!   (`τ_i^k` becomes ready only when `τ_i^{k−1}` finishes — paper
//!   Section IV "Scheduling at Run Time").
//! * **Global fixed-priority scheduling** ([`simulate_global`]): at every
//!   instant the `m` highest-priority ready jobs run, with free migration —
//!   used by the Dhall-effect demonstration (paper Section I).
//!
//! Jobs are released strictly periodically from a synchronous start (the
//! pessimistic arrival pattern for the sporadic model). A run reports every
//! deadline miss, the number of completed jobs and the maximum observed
//! response time per task, which the test-suite cross-checks against the
//! RTA bounds: `observed ≤ analyzed` always, with equality on synchronous
//! critical instants for non-split tasks.

//! ```
//! use rmts_sim::{simulate_partitioned, SimConfig};
//! use rmts_taskmodel::{Subtask, TaskSet};
//!
//! let ts = TaskSet::from_pairs(&[(2, 4), (2, 8), (2, 8)]).unwrap(); // U = 1.0
//! let workload: Vec<Subtask> = ts
//!     .iter_prioritized()
//!     .map(|(p, t)| Subtask::whole(t, p))
//!     .collect();
//! let report = simulate_partitioned(&[&workload], SimConfig::default());
//! assert!(report.all_deadlines_met()); // harmonic at 100%: tight but clean
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod engine;
pub mod global;
pub mod partitioned;
pub mod reference;
pub mod trace;

pub use check::{DeadlineMiss, ReleaseModel, ResponseStats, SimConfig, SimReport};
pub use engine::{checked_horizon_for, checked_hyperperiod_of, horizon_for};
pub use global::simulate_global;
pub use partitioned::{simulate_partitioned, simulate_partitioned_traced};
pub use reference::simulate_reference;
pub use trace::{Segment, Trace};
