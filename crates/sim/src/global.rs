//! Event-driven simulation of **global** fixed-priority scheduling.
//!
//! At every instant the `m` highest-priority ready jobs execute, with free
//! migration and no migration cost. This is the model under which the
//! Dhall effect arises (paper Section I): `m` short high-priority tasks
//! plus one long low-priority task can miss deadlines at total utilization
//! arbitrarily close to 1 (normalized `1/m`), which motivates the
//! partitioned approach.

use crate::check::{ReleaseModel, SimConfig, SimReport};
use crate::engine::{horizon_for, record_completion, record_miss, Jitter, TaskChain};
use rmts_taskmodel::{Task, TaskSet, Time};

/// Simulates global preemptive fixed-priority scheduling of `ts` (RM
/// priorities) on `m` identical processors.
pub fn simulate_global(ts: &TaskSet, m: usize, config: SimConfig) -> SimReport {
    assert!(m > 0, "need at least one processor");
    let chains: Vec<TaskChain> = ts
        .iter_prioritized()
        .map(|(p, t)| TaskChain {
            id: t.id,
            period: t.period,
            priority: p,
            stages: vec![crate::engine::Stage {
                processor: 0, // unused under global scheduling
                wcet: t.wcet,
            }],
        })
        .collect();
    let horizon = horizon_for(&chains, config.horizon);
    let mut report = SimReport {
        horizon,
        ..SimReport::default()
    };

    // Per-task state: (next_release, next_job, active: Option<(job, released,
    // remaining)>). Chains are in priority order already.
    struct St {
        next_release: Time,
        next_job: u64,
        active: Option<(u64, Time, Time)>,
    }
    let mut jitter: Vec<Jitter> = chains
        .iter()
        .map(|c| match config.release {
            ReleaseModel::Periodic => Jitter::new(0, 0),
            ReleaseModel::Sporadic { seed, .. } => Jitter::new(seed, c.id.0 as u64),
        })
        .collect();
    let mut st: Vec<St> = chains
        .iter()
        .zip(&mut jitter)
        .map(|(_, j)| St {
            next_release: match config.release {
                ReleaseModel::Periodic => Time::ZERO,
                ReleaseModel::Sporadic { max_delay, .. } => Time::new(j.next(max_delay)),
            },
            next_job: 0,
            active: None,
        })
        .collect();
    let mut prev_running: Vec<bool> = vec![false; chains.len()];

    let mut now = Time::ZERO;
    loop {
        // The m highest-priority active jobs run.
        let running: Vec<usize> = st
            .iter()
            .enumerate()
            .filter(|(_, s)| s.active.is_some())
            .map(|(i, _)| i)
            .take(m)
            .collect();
        // Preemption accounting: a job that was running and is now ready
        // but not running was preempted.
        for (i, s) in st.iter().enumerate() {
            let runs_now = running.contains(&i);
            if prev_running[i] && !runs_now && s.active.is_some() {
                report.preemptions += 1;
            }
            prev_running[i] = runs_now;
        }

        let mut t_next = Time::MAX;
        for &i in &running {
            // Invariant: `running` is rebuilt each step from chains whose
            // `active` is `Some` (the scheduler picks among active jobs).
            let (_, _, rem) = st[i].active.expect("running jobs are active");
            t_next = t_next.min(now + rem);
        }
        for s in &st {
            t_next = t_next.min(s.next_release);
        }
        if t_next > horizon {
            break;
        }
        let dt = t_next - now;
        if !dt.is_zero() {
            for &i in &running {
                if let Some((_, _, rem)) = st[i].active.as_mut() {
                    *rem = rem.saturating_sub(dt);
                }
            }
        }
        now = t_next;

        // Completions.
        for (i, s) in st.iter_mut().enumerate() {
            if !running.contains(&i) {
                continue;
            }
            if let Some((job, released, rem)) = s.active {
                if rem.is_zero() {
                    s.active = None;
                    record_completion(&mut report, &chains[i], released, now);
                    if now > released + chains[i].period {
                        record_miss(&mut report, &chains[i], job, released, Some(now));
                    }
                }
            }
        }
        if config.stop_on_first_miss && !report.misses.is_empty() {
            return report;
        }

        // Releases.
        for (i, s) in st.iter_mut().enumerate() {
            if s.next_release != now {
                continue;
            }
            if let Some((job, released, _)) = s.active.take() {
                record_miss(&mut report, &chains[i], job, released, None);
            }
            s.active = Some((s.next_job, now, chains[i].stages[0].wcet));
            s.next_job += 1;
            let extra = match config.release {
                ReleaseModel::Periodic => Time::ZERO,
                ReleaseModel::Sporadic { max_delay, .. } => Time::new(jitter[i].next(max_delay)),
            };
            s.next_release = now + chains[i].period + extra;
        }
        if config.stop_on_first_miss && !report.misses.is_empty() {
            return report;
        }
    }

    for (i, s) in st.iter().enumerate() {
        if let Some((job, released, _)) = s.active {
            if released + chains[i].period <= horizon {
                record_miss(&mut report, &chains[i], job, released, None);
            }
        }
    }
    report
}

/// Builds the classic Dhall adversary: `m` light tasks `(2ε, T)` plus one
/// task `(T, T+ε̃)` that saturates a processor. Under global RM the long
/// task misses although `U_M → 1/m`; under any reasonable partitioning it
/// is trivially schedulable. `epsilon` is in ticks.
pub fn dhall_adversary(m: usize, period: u64, epsilon: u64) -> TaskSet {
    assert!(m >= 1 && epsilon >= 1 && period > 2 * epsilon);
    let mut tasks = Vec::with_capacity(m + 1);
    for i in 0..m {
        // Invariant: the assert above guarantees 0 < 2ε < T, a valid task.
        tasks.push(Task::from_ticks(i as u32, 2 * epsilon, period).unwrap());
    }
    // The long task: period just above the short ones so it gets the lowest
    // RM priority, and C = period (it needs a whole processor's worth).
    // Invariant: 0 < T ≤ T+ε and the ids 0..=m are distinct, so both the
    // task and the set construction are infallible here.
    tasks.push(Task::from_ticks(m as u32, period, period + epsilon).unwrap());
    TaskSet::new(tasks).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmts_taskmodel::{TaskId, TaskSetBuilder};

    #[test]
    fn single_processor_global_equals_uniprocessor() {
        let ts = TaskSetBuilder::new().task(1, 4).task(2, 6).build().unwrap();
        let report = simulate_global(&ts, 1, SimConfig::default());
        assert!(report.all_deadlines_met());
        assert_eq!(report.response_of(TaskId(0)), Some(Time::new(1)));
        assert_eq!(report.response_of(TaskId(1)), Some(Time::new(3)));
    }

    #[test]
    fn two_processors_run_in_parallel() {
        // Two heavy tasks that would overload one processor run fine on two.
        let ts = TaskSetBuilder::new().task(3, 4).task(3, 4).build().unwrap();
        assert!(!simulate_global(&ts, 1, SimConfig::default()).all_deadlines_met());
        assert!(simulate_global(&ts, 2, SimConfig::default()).all_deadlines_met());
    }

    #[test]
    fn dhall_effect_reproduced() {
        // m = 2: short tasks (2, 1000) ×2 and a long task (1000, 1001).
        // Global RM: at t = 0 both processors run the short tasks for 2
        // ticks; the long task then has 1000 ticks of work and only 999
        // ticks to its deadline... it misses despite U_M ≈ 0.5.
        let ts = dhall_adversary(2, 1000, 1);
        let u_m = ts.normalized_utilization(2);
        assert!(
            u_m < 0.51,
            "Dhall set should have low utilization, got {u_m}"
        );
        let report = simulate_global(&ts, 2, SimConfig::default());
        assert!(!report.all_deadlines_met(), "Dhall effect must bite");
        assert_eq!(report.misses[0].task, TaskId(2));
    }

    #[test]
    fn dhall_set_fine_when_long_task_isolated() {
        // The same adversary, simulated as a partition: long task alone on
        // P0, short tasks on P1 — everything meets its deadline.
        use crate::partitioned::simulate_partitioned;
        use rmts_taskmodel::Subtask;
        let ts = dhall_adversary(2, 1000, 1);
        let chains: Vec<Subtask> = ts
            .iter_prioritized()
            .map(|(p, t)| Subtask::whole(t, p))
            .collect();
        let w0 = vec![chains[2]]; // the long task
        let w1 = vec![chains[0], chains[1]];
        let report = simulate_partitioned(&[&w0, &w1], SimConfig::default());
        assert!(report.all_deadlines_met());
    }

    #[test]
    fn more_processors_than_tasks() {
        let ts = TaskSetBuilder::new().task(1, 4).build().unwrap();
        let report = simulate_global(&ts, 8, SimConfig::default());
        assert!(report.all_deadlines_met());
    }
}
