//! The one-stop task-set factory used by the experiment harness.

use crate::periods::PeriodGen;
use crate::uunifast::uunifast_discard;
use rand::Rng;
use rmts_taskmodel::{Task, TaskSet, Time};
use serde::{Deserialize, Serialize};

/// How individual utilizations are constrained.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilizationSpec {
    /// Per-task minimum (avoids degenerate near-zero tasks).
    pub u_min: f64,
    /// Per-task maximum. Set to the light threshold `Θ/(1+Θ)` to generate
    /// light task sets; 1.0 for unconstrained sets.
    pub u_max: f64,
}

impl UtilizationSpec {
    /// Unconstrained: `(0.001, 1.0]`.
    pub fn any() -> Self {
        UtilizationSpec {
            u_min: 0.001,
            u_max: 1.0,
        }
    }

    /// Capped at `u_max` (e.g. the light-task threshold).
    pub fn capped(u_max: f64) -> Self {
        UtilizationSpec {
            u_min: 0.001,
            u_max,
        }
    }
}

/// A task-set generator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenConfig {
    /// Number of tasks `N`.
    pub n: usize,
    /// Target **total** utilization `U(τ)` (multiply a normalized target by
    /// `M` before passing it here).
    pub total_utilization: f64,
    /// Period generation strategy.
    pub periods: PeriodGen,
    /// Per-task utilization constraints.
    pub utilization: UtilizationSpec,
    /// UUniFast-discard retry budget.
    pub max_attempts: usize,
}

impl GenConfig {
    /// A reasonable default: `n` tasks, log-uniform periods, unconstrained
    /// utilizations at the given total.
    pub fn new(n: usize, total_utilization: f64) -> Self {
        GenConfig {
            n,
            total_utilization,
            periods: PeriodGen::default_log_uniform(),
            utilization: UtilizationSpec::any(),
            max_attempts: 10_000,
        }
    }

    /// Replaces the period generator.
    #[must_use]
    pub fn with_periods(mut self, periods: PeriodGen) -> Self {
        self.periods = periods;
        self
    }

    /// Replaces the utilization constraints.
    #[must_use]
    pub fn with_utilization(mut self, spec: UtilizationSpec) -> Self {
        self.utilization = spec;
        self
    }

    /// Generates one task set, or `None` if the utilization vector is
    /// infeasible under the constraints (e.g. `U > n · u_max`).
    ///
    /// WCETs are `max(1, round(u · T))` — integer rounding may move the
    /// realized total utilization slightly *below* the target (never more
    /// than `n / T_min` above it; with the default grids the drift is
    /// ≪ 0.1%). Callers that need the realized value use
    /// [`TaskSet::total_utilization`].
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<TaskSet> {
        let utils = uunifast_discard(
            rng,
            self.n,
            self.total_utilization,
            self.utilization.u_min,
            self.utilization.u_max,
            self.max_attempts,
        )?;
        let mut tasks = Vec::with_capacity(self.n);
        for (i, &u) in utils.iter().enumerate() {
            let period = self.periods.sample(rng);
            // Floor, not round: rounding up could push the realized total
            // utilization above the target, silently generating infeasible
            // sets at U_M = 1.0 (harmonic full-load experiments).
            let c = ((period.ticks() as f64) * u).floor().max(1.0) as u64;
            let c = c.min(period.ticks());
            tasks.push(Task::new(i as u32, Time::new(c), period).expect("validated above"));
        }
        Some(TaskSet::new(tasks).expect("ids are unique by construction"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded::trial_rng;

    #[test]
    fn generates_requested_shape() {
        let mut rng = trial_rng(1, 0);
        let cfg = GenConfig::new(12, 3.0);
        let ts = cfg.generate(&mut rng).unwrap();
        assert_eq!(ts.len(), 12);
        // Realized utilization close to the target (rounding drift small
        // because the default periods are ≥ 10^4 ticks).
        assert!((ts.total_utilization() - 3.0).abs() < 0.01);
    }

    #[test]
    fn light_sets_respect_cap() {
        let mut rng = trial_rng(2, 0);
        let cfg = GenConfig::new(16, 3.5).with_utilization(UtilizationSpec::capped(0.41));
        for _ in 0..20 {
            let ts = cfg.generate(&mut rng).unwrap();
            assert!(ts.max_utilization() <= 0.415, "cap violated");
        }
    }

    #[test]
    fn infeasible_target_returns_none() {
        let mut rng = trial_rng(3, 0);
        let cfg = GenConfig::new(4, 3.0).with_utilization(UtilizationSpec::capped(0.4));
        assert!(cfg.generate(&mut rng).is_none());
    }

    #[test]
    fn harmonic_periods_produce_harmonic_sets() {
        use rmts_taskmodel::harmonic::taskset_is_harmonic;
        let mut rng = trial_rng(4, 0);
        let cfg = GenConfig::new(8, 2.0).with_periods(PeriodGen::Harmonic {
            base: 10_000,
            octaves: 4,
        });
        let ts = cfg.generate(&mut rng).unwrap();
        assert!(taskset_is_harmonic(&ts));
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = GenConfig::new(6, 2.0);
        let a = cfg.generate(&mut trial_rng(9, 5)).unwrap();
        let b = cfg.generate(&mut trial_rng(9, 5)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn serde_roundtrip() {
        let cfg = GenConfig::new(6, 2.0);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: GenConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}
