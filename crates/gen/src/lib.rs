//! # `rmts-gen` — synthetic workload generation
//!
//! Every experiment in the reproduction sweeps over randomly generated task
//! sets, in the style standard for this literature (and used by the paper's
//! research line): utilizations drawn with **UUniFast-discard**, periods
//! drawn log-uniformly or from harmonic grids, everything integral and
//! deterministic under a seed.
//!
//! * [`uunifast`](mod@uunifast) — the UUniFast algorithm and its discard variant for
//!   per-task utilization caps (light task sets).
//! * [`periods`] — period generators: log-uniform on a divisor-friendly
//!   grid (keeps hyperperiods simulable), single harmonic chains, and
//!   `k`-chain mixtures (exercising the harmonic-chain bound).
//! * [`config`] — [`GenConfig`], the one-stop task-set
//!   factory used by the experiment harness.
//! * [`seeded`] — deterministic per-trial RNG derivation so experiments are
//!   reproducible regardless of thread scheduling.

//! ```
//! use rmts_gen::{trial_rng, GenConfig, PeriodGen, UtilizationSpec};
//!
//! let cfg = GenConfig::new(8, 2.0)
//!     .with_periods(PeriodGen::Harmonic { base: 10_000, octaves: 4 })
//!     .with_utilization(UtilizationSpec::capped(0.40));
//! let ts = cfg.generate(&mut trial_rng(42, 0)).unwrap();
//! assert_eq!(ts.len(), 8);
//! assert!(ts.max_utilization() <= 0.405);
//! assert!((ts.total_utilization() - 2.0).abs() < 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod automotive;
pub mod config;
pub mod periods;
pub mod seeded;
pub mod uunifast;

pub use automotive::{automotive_period, automotive_taskset};
pub use config::{GenConfig, UtilizationSpec};
pub use periods::PeriodGen;
pub use seeded::trial_rng;
pub use uunifast::{uunifast, uunifast_discard};
