//! UUniFast and UUniFast-discard utilization generation.
//!
//! Bini & Buttazzo's UUniFast draws `n` utilizations summing to `u_total`,
//! uniformly over the valid simplex. The *discard* variant rejects and
//! redraws whole vectors until every component lies within `[u_min, u_max]`
//! — the standard way to generate *light* task sets (`u_max = Θ/(1+Θ)`)
//! without biasing the distribution shape.

use rand::Rng;

/// Draws `n` utilizations summing to `u_total` (UUniFast).
///
/// # Panics
///
/// Panics if `n == 0` or `u_total <= 0`.
pub fn uunifast<R: Rng + ?Sized>(rng: &mut R, n: usize, u_total: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one task");
    assert!(u_total > 0.0, "total utilization must be positive");
    let mut out = Vec::with_capacity(n);
    let mut sum = u_total;
    for i in 1..n {
        let next = sum * rng.gen::<f64>().powf(1.0 / (n - i) as f64);
        out.push(sum - next);
        sum = next;
    }
    out.push(sum);
    out
}

/// UUniFast-discard: redraws until every utilization is in
/// `[u_min, u_max]`. Returns `None` after `max_attempts` failures (the
/// target may be infeasible, e.g. `u_total > n·u_max`).
pub fn uunifast_discard<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    u_total: f64,
    u_min: f64,
    u_max: f64,
    max_attempts: usize,
) -> Option<Vec<f64>> {
    if u_total > n as f64 * u_max || u_total < n as f64 * u_min {
        return None; // infeasible outright
    }
    for _ in 0..max_attempts {
        let candidate = uunifast(rng, n, u_total);
        if candidate.iter().all(|&u| u >= u_min && u <= u_max) {
            return Some(candidate);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sums_to_target() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 5, 20] {
            for u in [0.5, 1.0, 3.7] {
                let v = uunifast(&mut rng, n, u);
                assert_eq!(v.len(), n);
                let s: f64 = v.iter().sum();
                assert!((s - u).abs() < 1e-9, "n={n} u={u} sum={s}");
                assert!(v.iter().all(|&x| x >= 0.0));
            }
        }
    }

    #[test]
    fn single_task_gets_everything() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(uunifast(&mut rng, 1, 0.7), vec![0.7]);
    }

    #[test]
    fn discard_respects_caps() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let v = uunifast_discard(&mut rng, 16, 3.0, 0.01, 0.41, 10_000).unwrap();
            assert!(v.iter().all(|&u| (0.01..=0.41).contains(&u)));
            let s: f64 = v.iter().sum();
            assert!((s - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn discard_detects_infeasible() {
        let mut rng = StdRng::seed_from_u64(4);
        // 4 tasks capped at 0.4 can't reach 2.0 total.
        assert!(uunifast_discard(&mut rng, 4, 2.0, 0.0, 0.4, 100).is_none());
        // Nor can they be below the floor.
        assert!(uunifast_discard(&mut rng, 4, 0.1, 0.2, 1.0, 100).is_none());
    }

    #[test]
    fn distribution_is_roughly_symmetric() {
        // Over many draws, each position has the same mean U/n (UUniFast is
        // exchangeable). Loose check: means within 20% of each other.
        let mut rng = StdRng::seed_from_u64(5);
        let n = 4;
        let mut means = vec![0.0f64; n];
        let trials = 4000;
        for _ in 0..trials {
            let v = uunifast(&mut rng, n, 2.0);
            for (m, x) in means.iter_mut().zip(&v) {
                *m += x;
            }
        }
        for m in &mut means {
            *m /= trials as f64;
        }
        let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = means.iter().cloned().fold(0.0, f64::max);
        assert!(hi / lo < 1.2, "position means too skewed: {means:?}");
    }
}
