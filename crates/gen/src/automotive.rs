//! Automotive benchmark workloads (WATERS/Kramer-style).
//!
//! Kramer, Ziegenbein & Hamann's "Real world automotive benchmarks for
//! free" (WATERS 2015) published the period distribution of production
//! engine-management software; it has become the community's standard
//! "realistic workload" generator. Periods come from a fixed menu with
//! highly non-uniform weights, dominated by 10/20/100 ms rate groups —
//! note the menu is *nearly* harmonic ({1,2,10,20,100,200,1000} chain with
//! 5/50 off-chain), which is exactly the regime where parametric bounds
//! and harmonization shine.

use rand::Rng;
use rmts_taskmodel::{Task, TaskSet, Time};

/// The WATERS period menu (milliseconds) with occurrence weights (‰).
pub const AUTOMOTIVE_PERIODS_MS: [(u64, u32); 9] = [
    (1, 30),
    (2, 20),
    (5, 20),
    (10, 250),
    (20, 250),
    (50, 30),
    (100, 200),
    (200, 150),
    (1000, 50),
];

/// Draws one period from the weighted automotive menu.
pub fn automotive_period<R: Rng + ?Sized>(rng: &mut R) -> Time {
    let total: u32 = AUTOMOTIVE_PERIODS_MS.iter().map(|&(_, w)| w).sum();
    let mut roll = rng.gen_range(0..total);
    for &(ms, w) in &AUTOMOTIVE_PERIODS_MS {
        if roll < w {
            return Time::from_ms(ms);
        }
        roll -= w;
    }
    unreachable!("weights exhausted");
}

/// Generates an automotive-style task set: `n` runnables-clusters with
/// weighted periods and UUniFast utilizations summing to `total_u`
/// (per-task cap `u_max`). Returns `None` when the target is infeasible.
pub fn automotive_taskset<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    total_u: f64,
    u_max: f64,
) -> Option<TaskSet> {
    let utils = crate::uunifast::uunifast_discard(rng, n, total_u, 0.001, u_max, 10_000)?;
    let tasks: Vec<Task> = utils
        .iter()
        .enumerate()
        .map(|(i, &u)| {
            let period = automotive_period(rng);
            let c = (((period.ticks() as f64) * u).floor() as u64).max(1);
            Task::new(i as u32, Time::new(c.min(period.ticks())), period)
                .expect("validated construction")
        })
        .collect();
    TaskSet::new(tasks).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded::trial_rng;
    use std::collections::BTreeMap;

    #[test]
    fn periods_come_from_the_menu() {
        let mut rng = trial_rng(1, 0);
        let menu: Vec<u64> = AUTOMOTIVE_PERIODS_MS
            .iter()
            .map(|&(ms, _)| ms * 1000)
            .collect();
        for _ in 0..500 {
            let t = automotive_period(&mut rng).ticks();
            assert!(menu.contains(&t), "period {t} not in menu");
        }
    }

    #[test]
    fn weights_are_respected() {
        // 10 ms and 20 ms together carry half the mass; 1 ms only 3%.
        let mut rng = trial_rng(2, 0);
        let mut counts: BTreeMap<u64, u32> = BTreeMap::new();
        let trials = 20_000;
        for _ in 0..trials {
            *counts
                .entry(automotive_period(&mut rng).ticks())
                .or_insert(0) += 1;
        }
        let frac = |ms: u64| *counts.get(&(ms * 1000)).unwrap_or(&0) as f64 / trials as f64;
        assert!((frac(10) + frac(20) - 0.5).abs() < 0.03);
        assert!(frac(1) < 0.06);
        assert!(frac(1000) < 0.09);
    }

    #[test]
    fn taskset_generation() {
        let mut rng = trial_rng(3, 0);
        let ts = automotive_taskset(&mut rng, 30, 3.0, 0.4).unwrap();
        assert_eq!(ts.len(), 30);
        assert!(ts.max_utilization() <= 0.405);
        assert!((ts.total_utilization() - 3.0).abs() < 0.05);
        // Hyperperiod of the menu is 1 s — simulable.
        assert!(ts.hyperperiod() <= Time::from_secs(1));
    }

    #[test]
    fn near_harmonic_structure() {
        // The dominant menu {1,2,10,20,100,200,1000} is a single chain;
        // 5 and 50 add at most one more. K ≤ 3 for any draw.
        use rmts_taskmodel::harmonic::chain_count;
        let mut rng = trial_rng(4, 0);
        for _ in 0..20 {
            let ts = automotive_taskset(&mut rng, 25, 2.0, 0.5).unwrap();
            assert!(chain_count(&ts) <= 3, "K = {}", chain_count(&ts));
        }
    }

    #[test]
    fn infeasible_target() {
        let mut rng = trial_rng(5, 0);
        assert!(automotive_taskset(&mut rng, 4, 3.0, 0.4).is_none());
    }
}
