//! Period generators.
//!
//! Periods determine both the difficulty of bin packing and the value of
//! the parametric bounds, so the experiments need several styles:
//!
//! * [`PeriodGen::LogUniform`] — the literature's default: log-uniformly
//!   distributed periods, snapped to a divisor-friendly grid so that
//!   hyperperiods stay simulable.
//! * [`PeriodGen::Harmonic`] — one harmonic chain `base · 2^k` (the 100%
//!   bound's domain).
//! * [`PeriodGen::Chains`] — a mixture of `k` harmonic chains (the
//!   harmonic-chain bound's domain).
//! * [`PeriodGen::Choice`] — an explicit menu of periods.

use rand::Rng;
use rmts_taskmodel::Time;
use serde::{Deserialize, Serialize};

/// A period-generation strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PeriodGen {
    /// Log-uniform in `[min, max]`, snapped down to a multiple of
    /// `granularity`.
    LogUniform {
        /// Smallest period (ticks).
        min: u64,
        /// Largest period (ticks).
        max: u64,
        /// Snap grid (ticks); keeps hyperperiods tractable.
        granularity: u64,
    },
    /// A single harmonic chain: `base · 2^k`, `k` uniform in `0..octaves`.
    Harmonic {
        /// The chain's base period (ticks).
        base: u64,
        /// Number of octaves (distinct period values).
        octaves: u32,
    },
    /// `k` harmonic chains with the given base periods; each task picks a
    /// chain uniformly, then an octave.
    Chains {
        /// Base period of each chain (ticks). Bases should be pairwise
        /// non-dividing for the chain count to be exactly `bases.len()`.
        bases: Vec<u64>,
        /// Number of octaves per chain.
        octaves: u32,
    },
    /// Uniform choice from an explicit menu.
    Choice(Vec<u64>),
}

impl PeriodGen {
    /// The default used by the general-task-set experiments: periods from
    /// 10 ms to 1 s (at 1 µs ticks) on a 10 ms grid.
    pub fn default_log_uniform() -> Self {
        PeriodGen::LogUniform {
            min: 10_000,
            max: 1_000_000,
            granularity: 10_000,
        }
    }

    /// Draws one period.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Time {
        match self {
            PeriodGen::LogUniform {
                min,
                max,
                granularity,
            } => {
                assert!(min <= max && *min > 0 && *granularity > 0);
                let lo = (*min as f64).ln();
                let hi = (*max as f64).ln();
                let raw = (lo + rng.gen::<f64>() * (hi - lo)).exp();
                let snapped = ((raw / *granularity as f64).round() as u64) * granularity;
                Time::new(snapped.clamp(*min, *max))
            }
            PeriodGen::Harmonic { base, octaves } => {
                assert!(*base > 0 && *octaves > 0);
                let k = rng.gen_range(0..*octaves);
                Time::new(base << k)
            }
            PeriodGen::Chains { bases, octaves } => {
                assert!(!bases.is_empty() && *octaves > 0);
                let b = bases[rng.gen_range(0..bases.len())];
                let k = rng.gen_range(0..*octaves);
                Time::new(b << k)
            }
            PeriodGen::Choice(menu) => {
                assert!(!menu.is_empty());
                Time::new(menu[rng.gen_range(0..menu.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rmts_taskmodel::harmonic::is_harmonic;

    #[test]
    fn log_uniform_in_range_and_snapped() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = PeriodGen::default_log_uniform();
        for _ in 0..500 {
            let t = g.sample(&mut rng).ticks();
            assert!((10_000..=1_000_000).contains(&t));
            assert_eq!(t % 10_000, 0);
        }
    }

    #[test]
    fn log_uniform_spreads_over_decades() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = PeriodGen::default_log_uniform();
        let mut small = 0;
        let mut large = 0;
        for _ in 0..2000 {
            let t = g.sample(&mut rng).ticks();
            if t <= 100_000 {
                small += 1;
            }
            if t >= 500_000 {
                large += 1;
            }
        }
        // Log-uniform: ~half the mass below 100k (one decade of two).
        assert!(small > 600, "too few small periods: {small}");
        assert!(large > 100, "too few large periods: {large}");
    }

    #[test]
    fn harmonic_samples_form_a_chain() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = PeriodGen::Harmonic {
            base: 5_000,
            octaves: 5,
        };
        let samples: Vec<Time> = (0..100).map(|_| g.sample(&mut rng)).collect();
        assert!(is_harmonic(&samples));
        assert!(samples.iter().all(|t| t.ticks() % 5_000 == 0));
    }

    #[test]
    fn chains_use_all_bases() {
        let mut rng = StdRng::seed_from_u64(10);
        let g = PeriodGen::Chains {
            bases: vec![1_000, 1_700, 2_300],
            octaves: 3,
        };
        let mut hit = [false; 3];
        for _ in 0..300 {
            let t = g.sample(&mut rng).ticks();
            for (i, b) in [1_000u64, 1_700, 2_300].iter().enumerate() {
                if t.is_multiple_of(*b) && (t / b).is_power_of_two() {
                    hit[i] = true;
                }
            }
        }
        assert!(hit.iter().all(|&h| h), "not all chains sampled: {hit:?}");
    }

    #[test]
    fn choice_stays_in_menu() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = PeriodGen::Choice(vec![40, 50, 60]);
        for _ in 0..100 {
            assert!([40u64, 50, 60].contains(&g.sample(&mut rng).ticks()));
        }
    }
}
