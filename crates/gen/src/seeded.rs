//! Deterministic per-trial RNG derivation.
//!
//! Experiments fan trials out over worker threads; to make results
//! identical regardless of thread count and scheduling, every trial derives
//! its own RNG from `(master_seed, trial_index)` with a SplitMix64-style
//! mix, rather than sharing a sequential stream.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer: a high-quality 64→64 bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the RNG for trial `trial` of an experiment with `master_seed`.
pub fn trial_rng(master_seed: u64, trial: u64) -> StdRng {
    let mixed = splitmix64(master_seed ^ splitmix64(trial.wrapping_add(0xA5A5_A5A5)));
    StdRng::seed_from_u64(mixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic() {
        let a: u64 = trial_rng(42, 7).gen();
        let b: u64 = trial_rng(42, 7).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_trials_diverge() {
        let a: u64 = trial_rng(42, 7).gen();
        let b: u64 = trial_rng(42, 8).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn distinct_seeds_diverge() {
        let a: u64 = trial_rng(42, 7).gen();
        let b: u64 = trial_rng(43, 7).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn adjacent_trials_not_correlated() {
        // Cheap avalanche check: first draws of consecutive trials differ in
        // roughly half their bits on average.
        let mut total = 0u32;
        for t in 0..64u64 {
            let a: u64 = trial_rng(1, t).gen();
            let b: u64 = trial_rng(1, t + 1).gen();
            total += (a ^ b).count_ones();
        }
        let avg = total as f64 / 64.0;
        assert!((20.0..44.0).contains(&avg), "poor mixing: avg {avg} bits");
    }
}
