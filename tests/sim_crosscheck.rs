//! Analysis ↔ execution cross-checks: the simulator must never observe a
//! response time above what RTA promised, and RTA-verified partitions must
//! never miss a deadline when executed.

use rand::Rng;
use rmts::gen::trial_rng;
use rmts::prelude::*;
use rmts::rta::response_time;

/// Random schedulable partitions: simulated responses are bounded by the
/// analyzed worst case, per subtask chain (for non-split tasks the RTA
/// bound on the single stage; for split tasks the tail bound applies to
/// the whole chain because synthetic deadlines already absorb predecessor
/// delays).
#[test]
fn observed_response_never_exceeds_analyzed_bound_for_whole_tasks() {
    let mut compared = 0u32;
    for trial in 0..40u64 {
        let mut rng = trial_rng(0xC0DE, trial);
        let cfg = GenConfig::new(6, 0.9)
            .with_periods(PeriodGen::Choice(vec![4_000, 8_000, 12_000, 24_000]));
        let Some(ts) = cfg.generate(&mut rng) else {
            continue;
        };
        // Uniprocessor workload (no splitting): clean per-task comparison.
        let workload: Vec<Subtask> = ts
            .iter_prioritized()
            .map(|(p, t)| Subtask::whole(t, p))
            .collect();
        let Some(rtas) = (0..workload.len())
            .map(|i| response_time(&workload, i))
            .collect::<Option<Vec<_>>>()
        else {
            continue; // unschedulable shape; nothing to compare
        };
        compared += 1;
        let report = simulate_partitioned(&[&workload], SimConfig::default());
        assert!(report.all_deadlines_met());
        for (s, bound) in workload.iter().zip(&rtas) {
            let observed = report.response_of(s.parent).expect("task ran");
            assert!(
                observed <= *bound,
                "trial {trial}: τ{} observed {} > analyzed {}",
                s.parent.0,
                observed,
                bound
            );
            // Synchronous release is the critical instant: the bound is hit
            // exactly on the first job, so observed == analyzed here.
            assert_eq!(observed, *bound, "critical instant must be tight");
        }
    }
    // Guard against the whole loop silently degenerating: if generation
    // (or schedulability) starts failing on every trial, the property
    // above would vacuously "pass" having compared nothing.
    assert!(
        compared >= 10,
        "only {compared}/40 trials produced a comparable workload"
    );
}

/// End-to-end: every partition RM-TS produces (across random loads) passes
/// both static verification and dynamic execution.
#[test]
fn every_accepted_partition_executes_cleanly() {
    let mut accepted = 0;
    for trial in 0..60u64 {
        let mut rng = trial_rng(0xFACE, trial);
        let m = 2 + (trial % 3) as usize; // 2..4 processors
        let u = rng.gen_range(0.5..0.95);
        let cfg = GenConfig::new(4 * m, u * m as f64).with_periods(PeriodGen::Choice(vec![
            5_000, 10_000, 20_000, 40_000, 80_000,
        ]));
        let Some(ts) = cfg.generate(&mut rng) else {
            continue;
        };
        let Ok(partition) = RmTs::new().partition(&ts, m) else {
            continue;
        };
        accepted += 1;
        assert!(partition.covers(&ts), "trial {trial}: budget lost");
        assert!(
            partition.verify_rta(),
            "trial {trial}: RTA verification failed"
        );
        let report = simulate_partitioned(&partition.workloads(), SimConfig::default());
        assert!(
            report.all_deadlines_met(),
            "trial {trial}: simulated deadline miss in an RTA-verified partition:\n{partition}"
        );
    }
    assert!(accepted >= 30, "too few accepted partitions: {accepted}");
}

/// The same end-to-end property for RM-TS/light on light sets — including
/// saturated harmonic sets at exactly U_M = 1.0, the hardest feasible case.
#[test]
fn saturated_harmonic_partitions_execute_cleanly() {
    let mut executed = 0u32;
    for trial in 0..25u64 {
        let mut rng = trial_rng(0xBEEF, trial);
        let m = 2 + (trial % 2) as usize;
        let cfg = GenConfig::new(6 * m, m as f64)
            .with_periods(PeriodGen::Harmonic {
                base: 8_000,
                octaves: 4,
            })
            .with_utilization(UtilizationSpec::capped(0.40));
        let Some(ts) = cfg.generate(&mut rng) else {
            continue;
        };
        executed += 1;
        let partition = RmTsLight::new()
            .partition(&ts, m)
            .expect("Theorem 8 with the 100% harmonic bound");
        assert!(partition.verify_rta());
        let report = simulate_partitioned(&partition.workloads(), SimConfig::default());
        assert!(report.all_deadlines_met(), "trial {trial} missed");
    }
    // Saturated harmonic generation is delicate (U_M exactly 1.0 under a
    // per-task cap); fail loudly if it quietly stops producing sets.
    assert!(
        executed >= 8,
        "only {executed}/25 trials generated a saturated harmonic set"
    );
}

/// Global-vs-partitioned agreement on trivially parallel workloads: when
/// every processor would run one task, both simulators see identical
/// response times.
#[test]
fn global_and_partitioned_agree_on_independent_tasks() {
    let ts = TaskSetBuilder::new()
        .task(3, 10)
        .task(5, 14)
        .task(7, 22)
        .build()
        .unwrap();
    let g = simulate_global(&ts, 3, SimConfig::default());
    let workloads: Vec<Vec<Subtask>> = ts
        .iter_prioritized()
        .map(|(p, t)| vec![Subtask::whole(t, p)])
        .collect();
    let refs: Vec<&[Subtask]> = workloads.iter().map(Vec::as_slice).collect();
    let p = simulate_partitioned(&refs, SimConfig::default());
    assert!(g.all_deadlines_met() && p.all_deadlines_met());
    for t in ts.tasks() {
        assert_eq!(g.response_of(t.id), p.response_of(t.id));
    }
}
