//! Kill–recover fault injection against the real binary: a child-process
//! `rmts-cli serve --journal` is SIGKILLed at seeded points mid-load and
//! restarted against the same directory. The contracts under test:
//!
//! * **No corrupt record survives** — after any kill, the journal on disk
//!   decodes to a clean verified prefix, and every *acknowledged* op is
//!   inside it (write-ahead: acked ⇒ journaled ⇒ replayed).
//! * **Bit-identical recovery** — a surviving client's next delta answers
//!   exactly as on an uninterrupted run (the PR-7 differential contract,
//!   extended across a process boundary).
//! * **Bounded memo loss** — everything analyzed before the last
//!   checkpoint answers as a memo hit after restart.
//! * **No half-applied resurrection** — sessions closed before the kill
//!   stay closed.

use rmts::svc::wire::SessionRecord;
use rmts::svc::{
    engine_fingerprint, read_journal, AlgorithmSpec, AnalyzeRequest, JournalOp, RepartitionRequest,
    ResponseRecord, Verdict,
};
use rmts::verify::{kill_points, torn_write_sweep, JsonlClient, ServerProc};
use rmts_taskmodel::{Task, TaskId, TaskSetDelta};
use std::path::{Path, PathBuf};
use std::time::Duration;

const READY: Duration = Duration::from_secs(60);

fn bin() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_rmts-cli"))
}

/// A self-cleaning temp dir per test.
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!("rmts_crash_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
    fn path(&self) -> &str {
        self.0.to_str().unwrap()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn spawn_durable(dir: &TempDir, extra: &[&str]) -> ServerProc {
    let mut args = vec!["--shards", "2", "--journal", dir.path()];
    args.extend_from_slice(extra);
    ServerProc::spawn(bin(), &args, READY).expect("server must come up")
}

fn base_request() -> AnalyzeRequest {
    AnalyzeRequest::new(
        vec![(1, 4), (2, 8), (2, 8), (4, 16), (3, 12)],
        2,
        AlgorithmSpec::RmTsLight,
    )
}

/// The committed-op script the kill tests drive: two sessions, a closed
/// third, committed deltas throughout.
fn script() -> Vec<RepartitionRequest> {
    vec![
        RepartitionRequest::open("alpha", base_request()),
        RepartitionRequest::open("doomed", base_request()),
        RepartitionRequest::delta(
            "alpha",
            TaskSetDelta::update(Task::from_ticks(1, 3, 8).unwrap()),
        ),
        RepartitionRequest::close("doomed"),
        RepartitionRequest::open("beta", base_request()),
        RepartitionRequest::delta("beta", TaskSetDelta::remove(TaskId(4))),
        RepartitionRequest::delta(
            "alpha",
            TaskSetDelta::add(Task::from_ticks(7, 1, 16).unwrap()),
        ),
        RepartitionRequest::delta(
            "beta",
            TaskSetDelta::update(Task::from_ticks(0, 2, 8).unwrap()),
        ),
    ]
}

fn line(req: &RepartitionRequest) -> String {
    serde_json::to_string(req).unwrap()
}

/// Counts ops per (session, discriminant) so journal containment checks
/// are order-insensitive per session but exact in multiplicity.
fn op_key(op: &JournalOp) -> (String, &'static str) {
    match op {
        JournalOp::Open { session, .. } => (session.clone(), "open"),
        JournalOp::Delta { session, .. } => (session.clone(), "delta"),
        JournalOp::Close { session } => (session.clone(), "close"),
    }
}

fn req_key(req: &RepartitionRequest) -> (String, &'static str) {
    use rmts::svc::SessionOp;
    let kind = match req.op {
        SessionOp::Open { .. } => "open",
        SessionOp::Delta { .. } => "delta",
        SessionOp::Close => "close",
    };
    (req.session.clone(), kind)
}

#[test]
fn kill_at_randomized_points_loses_nothing_acknowledged() {
    let script = script();
    // ≥ 3 randomized kill points, deterministic from the seed.
    for (i, k) in kill_points(0xC0FFEE, 3, script.len())
        .into_iter()
        .enumerate()
    {
        let dir = TempDir::new(&format!("killpoint_{i}"));
        let mut server = spawn_durable(&dir, &[]);
        let mut client = JsonlClient::connect(server.addr()).unwrap();
        let mut acked: Vec<&RepartitionRequest> = Vec::new();
        for req in &script[..k] {
            let resp = client.roundtrip(&line(req)).unwrap();
            let rec: SessionRecord = serde_json::from_str(&resp).unwrap();
            assert!(
                matches!(rec.outcome.verdict, Verdict::Accepted { .. }),
                "scripted op must be accepted: {resp}"
            );
            acked.push(req);
        }
        // One more op races the kill: it may or may not commit — the
        // journal, not the TCP stream, is the arbiter.
        if let Some(racing) = script.get(k) {
            client.send(&line(racing)).unwrap();
        }
        server.kill().unwrap();

        // Contract 1: the on-disk journal is a clean verified prefix and
        // contains every acknowledged op (acked ⊆ journal ⊆ sent).
        let (ops, report) = read_journal(&dir.0.join("journal.g0.log"), &engine_fingerprint());
        assert!(!report.stale, "kill point {k}: {report:?}");
        let journaled: Vec<_> = ops.iter().map(op_key).collect();
        for req in &acked {
            let key = req_key(req);
            let in_journal = journaled.iter().filter(|j| **j == key).count();
            let in_acked = acked.iter().filter(|r| req_key(r) == key).count();
            assert!(
                in_journal >= in_acked,
                "kill point {k}: acked op {key:?} missing from journal ({journaled:?})"
            );
        }
        assert!(
            ops.len() <= k + 1,
            "kill point {k}: journal holds ops never sent: {journaled:?}"
        );

        // Contract 2: restart recovers, and the fleet keeps serving the
        // surviving sessions with exact state.
        let server = spawn_durable(&dir, &[]);
        let mut client = JsonlClient::connect(server.addr()).unwrap();
        let probe = RepartitionRequest::delta(
            "alpha",
            TaskSetDelta::update(Task::from_ticks(0, 1, 4).unwrap()),
        );
        let got: SessionRecord =
            serde_json::from_str(&client.roundtrip(&line(&probe)).unwrap()).unwrap();

        // Oracle: an in-process service replaying exactly the journaled
        // ops must answer the same probe identically (replay determinism
        // is the PR-7 contract; here it spans a real SIGKILL).
        use rmts::svc::{Request, Service, ServiceConfig};
        let control = Service::new(ServiceConfig::new().with_shards(2));
        let mut stream: Vec<Request> = Vec::new();
        for op in &ops {
            stream.push(Request::Repartition(match op {
                JournalOp::Open { session, base } => {
                    RepartitionRequest::open(session.clone(), base.clone())
                }
                JournalOp::Delta { session, delta } => {
                    RepartitionRequest::delta(session.clone(), delta.clone())
                }
                JournalOp::Close { session } => RepartitionRequest::close(session.clone()),
            }));
        }
        stream.push(Request::Repartition(probe));
        let expected = control.run_stream(stream);
        let expected = expected.last().unwrap();
        let expected_meta = expected.session.as_ref().unwrap();
        assert_eq!(got.session, expected_meta.session, "kill point {k}");
        assert_eq!(got.path, expected_meta.path, "kill point {k}");
        assert_eq!(got.outcome, *expected.outcome, "kill point {k}");
        server.stop().unwrap();
    }
}

#[test]
fn closed_sessions_stay_closed_across_a_kill() {
    let dir = TempDir::new("no_resurrect");
    let mut server = spawn_durable(&dir, &[]);
    let mut client = JsonlClient::connect(server.addr()).unwrap();
    for req in &[
        RepartitionRequest::open("doomed", base_request()),
        RepartitionRequest::close("doomed"),
    ] {
        client.roundtrip(&line(req)).unwrap();
    }
    server.kill().unwrap();

    let server = spawn_durable(&dir, &[]);
    let mut client = JsonlClient::connect(server.addr()).unwrap();
    let resp = client
        .roundtrip(&line(&RepartitionRequest::delta(
            "doomed",
            TaskSetDelta::empty(),
        )))
        .unwrap();
    let rec: SessionRecord = serde_json::from_str(&resp).unwrap();
    assert_eq!(rec.path, "error");
    assert!(
        matches!(rec.outcome.verdict, Verdict::Invalid { ref reason } if reason.contains("unknown session")),
        "a closed session must not resurrect half-applied: {resp}"
    );
    server.stop().unwrap();
}

#[test]
fn memo_loss_is_bounded_by_one_checkpoint_interval() {
    let dir = TempDir::new("memo_bound");
    // Checkpoint after every mutation: the "interval" collapses to a
    // single request, so after the kill *everything* must answer warm.
    let mut server = spawn_durable(
        &dir,
        &["--snapshot-interval", "3600", "--snapshot-mutations", "1"],
    );
    let mut client = JsonlClient::connect(server.addr()).unwrap();
    let analyses: Vec<String> = (2u64..7)
        .map(|k| {
            serde_json::to_string(&AnalyzeRequest::new(
                vec![(1, 4), (2, 8), (k, 8 * k)],
                2,
                AlgorithmSpec::RmTsLight,
            ))
            .unwrap()
        })
        .collect();
    for a in &analyses {
        let rec: ResponseRecord = serde_json::from_str(&client.roundtrip(a).unwrap()).unwrap();
        assert!(!rec.memo_hit, "first analysis is a miss");
    }
    // Wait for the background checkpoint to cut a generation covering the
    // last mutation, then crash.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let newest = std::fs::read_dir(&dir.0)
            .unwrap()
            .flatten()
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                name.strip_prefix("memo.g")?
                    .strip_suffix(".snap")?
                    .parse::<u64>()
                    .ok()
            })
            .max();
        if newest.is_some_and(|g| g >= 1) {
            // One more settle tick: the memo snapshot of the *final*
            // generation must include the last analysis.
            let (entries, _) =
                rmts::svc::read_snapshot(&dir.0.join(format!("memo.g{}.snap", newest.unwrap())));
            if entries.len() == analyses.len() {
                break;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "background checkpoint never covered the workload"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    server.kill().unwrap();

    let server = spawn_durable(&dir, &[]);
    let mut client = JsonlClient::connect(server.addr()).unwrap();
    for a in &analyses {
        let rec: ResponseRecord = serde_json::from_str(&client.roundtrip(a).unwrap()).unwrap();
        assert!(
            rec.memo_hit,
            "analysis before the checkpoint must answer warm after recovery: {a}"
        );
    }
    server.stop().unwrap();
}

#[test]
fn wire_fixture_replays_identically_after_a_kill() {
    // Satellite fixture: tests/wire/crash_recovery_stream.jsonl, split at
    // the `# --kill--` marker. Part B after kill+restart must answer as
    // on an uninterrupted run.
    let fixture = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/wire/crash_recovery_stream.jsonl"),
    )
    .unwrap();
    let mut part_a: Vec<&str> = Vec::new();
    let mut part_b: Vec<&str> = Vec::new();
    let mut after_kill = false;
    for l in fixture.lines() {
        let t = l.trim();
        if t == "# --kill--" {
            after_kill = true;
            continue;
        }
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        if after_kill { &mut part_b } else { &mut part_a }.push(t);
    }
    assert!(
        !part_a.is_empty() && !part_b.is_empty(),
        "fixture has both parts"
    );

    let drive = |client: &mut JsonlClient, lines: &[&str]| -> Vec<SessionRecord> {
        lines
            .iter()
            .map(|l| serde_json::from_str(&client.roundtrip(l).unwrap()).unwrap())
            .collect()
    };

    // Control: one server, no crash.
    let control_dir = TempDir::new("fixture_control");
    let server = spawn_durable(&control_dir, &[]);
    let mut client = JsonlClient::connect(server.addr()).unwrap();
    drive(&mut client, &part_a);
    let expected = drive(&mut client, &part_b);
    server.stop().unwrap();

    // Crash run: part A, SIGKILL, restart, part B.
    let dir = TempDir::new("fixture_crash");
    let mut server = spawn_durable(&dir, &[]);
    let mut client = JsonlClient::connect(server.addr()).unwrap();
    drive(&mut client, &part_a);
    server.kill().unwrap();
    let server = spawn_durable(&dir, &[]);
    let mut client = JsonlClient::connect(server.addr()).unwrap();
    let got = drive(&mut client, &part_b);
    server.stop().unwrap();

    assert_eq!(got.len(), expected.len());
    for (g, e) in got.iter().zip(&expected) {
        // Indices restart with the connection; everything the protocol
        // promises about the *session* must be identical.
        assert_eq!(g.session, e.session);
        assert_eq!(g.path, e.path, "session {}: {g:?} vs {e:?}", g.session);
        assert_eq!(g.outcome, e.outcome, "session {}", g.session);
    }
}

#[test]
fn torn_write_simulator_finds_no_surviving_corruption() {
    let ops = vec![
        JournalOp::Open {
            session: "alpha".into(),
            base: base_request(),
        },
        JournalOp::Delta {
            session: "alpha".into(),
            delta: TaskSetDelta::update(Task::from_ticks(1, 3, 8).unwrap()),
        },
        JournalOp::Close {
            session: "alpha".into(),
        },
    ];
    let report = torn_write_sweep(&ops);
    assert!(report.clean(), "{report:?}");
    assert!(report.truncations > 100 && report.bitflips > 100);
    assert!(report.prefix_kept > 0 && report.rejected > 0);
}
