//! Allocation accounting for the partition hot path (DESIGN.md §5).
//!
//! This binary installs the `rmts-obs` counting allocator globally and
//! pins two claims:
//!
//! 1. the **steady-state admission loop** — cached probe, admit-then-place
//!    push, binary-search `MaxSplit`, processor reset — performs *zero*
//!    heap allocations once its buffers are warm (the `RtaCache` spare
//!    buffers, the processor workload `Vec`, and the workspace pool absorb
//!    every temporary); and
//! 2. a **warm [`PartitionWorkspace`]** makes whole-set `partition_with`
//!    calls strictly cheaper in allocations than the cold call, while
//!    producing a bit-identical `Partition` every time.
//!
//! The full partition call is *not* zero-alloc by design: sealing split
//! plans and the result's own `Vec`/`BTreeMap` are per-call allocations
//! that move into the returned `Partition`. The invariant covers the inner
//! admission loop, where the per-probe work lives.

use rmts::core::{
    AdmissionPolicy, MaxSplitStrategy, PartitionWorkspace, Partitioner, ProcessorState, RmTsLight,
};
use rmts::obs::alloc::thread_allocations;
use rmts::rta::budget::NewcomerSpec;
use rmts::taskmodel::{Priority, SubtaskKind, TaskId, TaskSet, Time};

#[global_allocator]
static ALLOC: rmts::obs::alloc::CountingAllocator = rmts::obs::alloc::CountingAllocator;

fn newcomer(i: u32, period: u64) -> NewcomerSpec {
    NewcomerSpec {
        parent: TaskId(i),
        period: Time::new(period),
        deadline: Time::new(period),
        priority: Priority(i),
    }
}

/// One steady-state cycle: recycle the processor, admit a handful of tasks
/// through the cached probe → push path, then answer one `MaxSplit` query.
fn admission_cycle(policy: &AdmissionPolicy, proc: &mut ProcessorState) {
    proc.reset(0);
    for &(i, t, c) in &[
        (1u32, 8u64, 2u64),
        (2, 12, 3),
        (3, 20, 2),
        (4, 30, 3),
        (5, 50, 4),
    ] {
        let new = newcomer(i, t);
        let budget = Time::new(c);
        assert!(policy.fits_whole(proc, &new, budget), "task {i} must admit");
        proc.push(new.with_budget(budget, 1, SubtaskKind::Whole));
    }
    let tail = newcomer(6, 40);
    let split = policy.max_budget(proc, &tail, Time::new(40));
    assert!(
        split > Time::ZERO,
        "the tail task must get a nonzero budget"
    );
}

#[test]
fn steady_state_admission_cycle_is_allocation_free() {
    let policy = AdmissionPolicy::exact().with_strategy(MaxSplitStrategy::BinarySearch);
    let mut proc = ProcessorState::new(0);
    // Warm-up: grow the workload vec, the cache's sorted/resp/safe tables,
    // and the probe/bsearch spare buffers to their steady-state capacity.
    for _ in 0..3 {
        admission_cycle(&policy, &mut proc);
    }
    let before = thread_allocations();
    for _ in 0..5 {
        admission_cycle(&policy, &mut proc);
    }
    let allocs = thread_allocations() - before;
    assert_eq!(
        allocs, 0,
        "warm admission cycles must not touch the heap (saw {allocs} allocations over 5 cycles)"
    );
}

#[test]
fn warm_workspace_partitions_identically_with_fewer_allocations() {
    let ts = TaskSet::from_pairs(&[
        (2, 10),
        (3, 14),
        (4, 20),
        (5, 25),
        (6, 40),
        (7, 50),
        (8, 80),
        (9, 100),
    ])
    .expect("valid task set");
    let m = 4;
    let engine = RmTsLight::new();
    let baseline = engine.partition(&ts, m).expect("the set must fit");

    let mut ws = PartitionWorkspace::new();
    let before_cold = thread_allocations();
    let cold_result = engine.partition_with(&ts, m, &mut ws).expect("must fit");
    let cold = thread_allocations() - before_cold;
    assert_eq!(
        cold_result, baseline,
        "workspace path must be bit-identical"
    );
    ws.recycle(cold_result);

    let mut warm_max = 0;
    for round in 0..5 {
        let before = thread_allocations();
        let p = engine.partition_with(&ts, m, &mut ws).expect("must fit");
        let warm = thread_allocations() - before;
        warm_max = warm_max.max(warm);
        assert_eq!(
            p, baseline,
            "round {round} diverged from the fresh partition"
        );
        ws.recycle(p);
    }
    assert!(
        warm_max < cold,
        "warm partition_with should allocate strictly less than cold ({warm_max} ≥ {cold})"
    );
}
