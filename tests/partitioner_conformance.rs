//! Conformance suite for the unified `Partitioner` dispatch layer.
//!
//! Every algorithm in the [`AlgorithmSpec`] catalogue, exercised purely
//! through `dyn Partitioner` trait objects over generated workloads, must
//! uphold the API contract the batch service (and every other caller)
//! relies on:
//!
//! * an **accept** yields a partition that covers the task set, passes the
//!   structural audit, and verifies under exact RTA;
//! * a **reject** yields a well-formed [`PartitionReject`] (phase set,
//!   rejected task identified and listed, unassigned ids sorted/deduped);
//! * two runs of the same engine on the same input produce **identical**
//!   results — the determinism the service's memo table turns into its
//!   memo-hit ≡ fresh guarantee.

use rmts::gen::trial_rng;
use rmts::prelude::*;

fn workloads() -> Vec<TaskSet> {
    // A spread of generator families and loads: light/harmonic (mostly
    // accepted), log-uniform at moderate load, and overloaded (mostly
    // rejected) — both verdict paths get real coverage.
    let mut sets = Vec::new();
    for (trial, &(n, u)) in [(8usize, 1.4f64), (8, 1.9), (12, 2.4), (6, 1.0)]
        .iter()
        .enumerate()
    {
        let cfg = GenConfig::new(n, u).with_utilization(UtilizationSpec::capped(0.45));
        sets.push(cfg.generate(&mut trial_rng(7, trial as u64)).unwrap());
        let cfg = GenConfig::new(n, u).with_periods(PeriodGen::Harmonic {
            base: 10_000,
            octaves: 4,
        });
        sets.push(cfg.generate(&mut trial_rng(11, trial as u64)).unwrap());
    }
    sets
}

fn catalogue(n: usize) -> Vec<DynPartitioner> {
    AlgorithmSpec::catalogue()
        .iter()
        .map(|s| s.build(n))
        .collect()
}

#[test]
fn accepts_are_audit_clean_and_rta_verified() {
    for (si, ts) in workloads().iter().enumerate() {
        for m in [2usize, 4] {
            for alg in catalogue(ts.len()) {
                if let Ok(p) = alg.partition(ts, m) {
                    assert!(
                        p.covers(ts),
                        "{} lost budget on set {si}, m = {m}",
                        alg.name()
                    );
                    let defects = audit(&p, ts);
                    assert!(
                        defects.is_empty(),
                        "{} structural audit on set {si}, m = {m}: {defects:?}",
                        alg.name()
                    );
                    assert!(
                        p.verify_rta(),
                        "{} accepted an RTA-invalid partition on set {si}, m = {m}",
                        alg.name()
                    );
                }
            }
        }
    }
}

#[test]
fn rejects_are_well_formed_diagnostics() {
    let mut rejects_seen = 0usize;
    for ts in &workloads() {
        // m = 1 under total utilization > 1 forces rejections everywhere.
        for m in [1usize, 2] {
            for alg in catalogue(ts.len()) {
                if let Err(rej) = alg.partition(ts, m) {
                    rejects_seen += 1;
                    assert!(
                        !rej.unassigned.is_empty(),
                        "{}: a reject must name at least one unassigned task",
                        alg.name()
                    );
                    let mut sorted = rej.unassigned.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    assert_eq!(
                        rej.unassigned,
                        sorted,
                        "{}: unassigned ids must be sorted and deduped",
                        alg.name()
                    );
                    let task = rej
                        .task
                        .unwrap_or_else(|| panic!("{}: reject without a task", alg.name()));
                    assert!(
                        rej.unassigned.contains(&task) || ts.tasks().iter().any(|t| t.id == task),
                        "{}: rejected task {task:?} is not from the set",
                        alg.name()
                    );
                    assert!(
                        !rej.reason.is_empty(),
                        "{}: reject without a reason",
                        alg.name()
                    );
                    // The partial partition must still be structurally
                    // sane for the tasks it did place.
                    for b in &rej.bottlenecks {
                        assert!(b.processor < m, "{}: bottleneck off-range", alg.name());
                    }
                }
            }
        }
    }
    assert!(
        rejects_seen >= 10,
        "the workload family must actually exercise the reject path (saw {rejects_seen})"
    );
}

#[test]
fn partitioning_is_deterministic_across_runs() {
    for ts in &workloads() {
        for m in [2usize, 3] {
            for spec in AlgorithmSpec::catalogue() {
                let a = spec.build(ts.len());
                let b = spec.build(ts.len());
                match (a.partition(ts, m), b.partition(ts, m)) {
                    (Ok(p1), Ok(p2)) => {
                        assert_eq!(p1, p2, "{} accept is not deterministic (m = {m})", a.name())
                    }
                    (Err(r1), Err(r2)) => {
                        assert_eq!(r1, r2, "{} reject is not deterministic (m = {m})", a.name())
                    }
                    (r1, r2) => panic!(
                        "{} verdict flipped between runs (m = {m}): {} vs {}",
                        a.name(),
                        r1.is_ok(),
                        r2.is_ok()
                    ),
                }
            }
        }
    }
}

/// A delta stream that every schedulable base set survives: shrink the
/// lowest-priority task's budget, restore it, drop the task, re-add it.
/// The stream ends on the original membership, and the WCET-only edits
/// exercise the incremental (splice/replay) paths of session engines.
fn evolution(ts: &TaskSet) -> Vec<TaskSetDelta> {
    let t = *ts.tasks().last().unwrap();
    let mut deltas = Vec::new();
    if t.wcet.ticks() > 1 {
        let lowered = Task::new(t.id.0, Time::new(t.wcet.ticks() - 1), t.period).unwrap();
        deltas.push(TaskSetDelta::update(lowered));
        deltas.push(TaskSetDelta::update(t));
    }
    if ts.len() > 1 {
        deltas.push(TaskSetDelta::remove(t.id));
        deltas.push(TaskSetDelta::add(t));
    }
    deltas
}

#[test]
fn sessions_noop_delta_is_bit_identical_across_the_catalogue() {
    let mut sessions_opened = 0usize;
    for ts in &workloads() {
        for m in [2usize, 4] {
            for spec in AlgorithmSpec::catalogue() {
                let engine = spec
                    .build_repartitioner(ts.len(), &EngineOptions::default())
                    .unwrap();
                let Ok(mut session) = PartitionSession::start(engine, ts.clone(), m) else {
                    continue;
                };
                sessions_opened += 1;
                let before = session.partition().clone();
                let ok = session
                    .apply(&TaskSetDelta::empty())
                    .unwrap_or_else(|e| panic!("{spec}: no-op delta failed: {e}"));
                assert_eq!(
                    ok.path,
                    RepartitionPath::Noop,
                    "{spec}: empty delta must take the no-op path (m = {m})"
                );
                assert_eq!(
                    *ok.partition, before,
                    "{spec}: no-op apply must leave the partition bit-identical (m = {m})"
                );
            }
        }
    }
    assert!(
        sessions_opened >= 20,
        "the workload family must open real sessions (saw {sessions_opened})"
    );
}

#[test]
fn session_delta_streams_match_from_scratch_partitions() {
    let mut commits = 0usize;
    let mut incremental_commits = 0usize;
    for ts in &workloads() {
        for m in [2usize, 4] {
            for spec in AlgorithmSpec::catalogue() {
                let engine = spec
                    .build_repartitioner(ts.len(), &EngineOptions::default())
                    .unwrap();
                let Ok(mut session) = PartitionSession::start(engine, ts.clone(), m) else {
                    continue;
                };
                for (di, delta) in evolution(ts).iter().enumerate() {
                    let evolved = delta.apply_to(session.taskset()).unwrap();
                    // The reference engine must share the session engine's
                    // configuration — SPA thresholds are parameterized by
                    // the *opening* set size, not the evolved one.
                    let scratch = spec.build(ts.len()).partition(&evolved, m);
                    match session.apply(delta) {
                        Ok(ok) => {
                            commits += 1;
                            if ok.path == RepartitionPath::Incremental {
                                incremental_commits += 1;
                            }
                            let fresh = scratch.unwrap_or_else(|r| {
                                panic!(
                                    "{spec}: session committed delta {di} but a fresh \
                                     run rejects (m = {m}): {r}"
                                )
                            });
                            assert_eq!(
                                *ok.partition, fresh,
                                "{spec}: incremental apply diverged from a from-scratch \
                                 partition on delta {di} (m = {m})"
                            );
                        }
                        Err(RepartitionError::Rejected { .. }) => {
                            assert!(
                                scratch.is_err(),
                                "{spec}: session rejected delta {di} but a fresh run \
                                 accepts (m = {m})"
                            );
                            // Admission-control semantics: the rejected delta
                            // must leave the session's set untouched.
                            assert_eq!(session.taskset().len(), ts.len());
                        }
                        Err(RepartitionError::Delta(e)) => {
                            panic!("{spec}: evolution delta {di} was invalid: {e}")
                        }
                    }
                }
            }
        }
    }
    assert!(
        commits >= 40,
        "the evolution streams must actually commit (saw {commits})"
    );
    assert!(
        incremental_commits >= 1,
        "at least one commit must take the incremental path"
    );
}

#[test]
fn sessions_are_deterministic_across_runs() {
    for ts in &workloads() {
        for spec in AlgorithmSpec::catalogue() {
            let m = 3usize;
            let open = |_| {
                let engine = spec
                    .build_repartitioner(ts.len(), &EngineOptions::default())
                    .unwrap();
                PartitionSession::start(engine, ts.clone(), m).ok()
            };
            let (Some(mut a), Some(mut b)) = (open(0), open(1)) else {
                continue;
            };
            assert_eq!(
                a.partition(),
                b.partition(),
                "{spec}: divergent session open"
            );
            for delta in &evolution(ts) {
                let ra = a.apply(delta).map(|ok| ok.path).map_err(drop);
                let rb = b.apply(delta).map(|ok| ok.path).map_err(drop);
                assert_eq!(ra, rb, "{spec}: sessions took different paths (m = {m})");
                assert_eq!(
                    a.partition(),
                    b.partition(),
                    "{spec}: identical delta streams produced different partitions"
                );
            }
        }
    }
}

#[test]
fn spec_names_and_engines_agree_across_the_catalogue() {
    // `accepts` through the trait object must agree with a full
    // `partition` call — the default-method contract.
    let ts = TaskSet::from_pairs(&[(1, 4), (2, 8), (2, 8), (4, 16)]).unwrap();
    for spec in AlgorithmSpec::catalogue() {
        let alg = spec.build(ts.len());
        assert_eq!(
            alg.accepts(&ts, 2),
            alg.partition(&ts, 2).is_ok(),
            "{}: accepts() diverges from partition()",
            alg.name()
        );
        // The grammar must round-trip every catalogue entry losslessly.
        assert_eq!(spec.to_string().parse::<AlgorithmSpec>(), Ok(spec));
    }
}

#[test]
fn equal_key_tasks_partition_identically_under_input_permutation() {
    // Tie-break regression: every sort order must fall back to the total
    // `(key, period, id)` order, so a partition is a function of the task
    // *set* alone — permuting equal-utilization tasks in the input vector
    // must not change a single placement.
    let tasks = [
        // Three identical-utilization (0.25) tasks at distinct periods,
        // plus two true clones of the same (wcet, period) differing only
        // by id — ties in *every* sort key.
        Task::new(1, Time::new(2), Time::new(8)).unwrap(),
        Task::new(2, Time::new(4), Time::new(16)).unwrap(),
        Task::new(3, Time::new(8), Time::new(32)).unwrap(),
        Task::new(4, Time::new(3), Time::new(12)).unwrap(),
        Task::new(5, Time::new(3), Time::new(12)).unwrap(),
    ];
    // A handful of distinct input orders, including reversed and
    // interleaved — cheap stand-ins for all 120 permutations.
    let orders: [&[usize]; 4] = [
        &[0, 1, 2, 3, 4],
        &[4, 3, 2, 1, 0],
        &[2, 4, 0, 3, 1],
        &[3, 0, 4, 1, 2],
    ];
    for spec in AlgorithmSpec::catalogue() {
        let alg = spec.build(tasks.len());
        let mut reference = None;
        for order in orders {
            let permuted: Vec<Task> = order.iter().map(|&i| tasks[i]).collect();
            let ts = TaskSet::new(permuted).unwrap();
            let got = alg.partition(&ts, 2);
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(
                    &got,
                    want,
                    "{}: permuting equal-key input tasks changed the partition",
                    alg.name()
                ),
            }
        }
    }
}
