//! Cross-crate coverage for the typed [`PartitionReject`] diagnostics:
//! every rejection must carry an actionable, internally consistent
//! explanation, across algorithms and load shapes.

use rmts::prelude::*;

/// Overloaded inputs that every algorithm must reject, from mildly
/// infeasible to absurd.
fn overloaded_sets() -> Vec<(TaskSet, usize)> {
    vec![
        // Three near-full tasks on two processors.
        (
            TaskSet::from_pairs(&[(9_000, 10_000), (9_000, 10_000), (9_000, 10_000)]).unwrap(),
            2,
        ),
        // Total utilization 3.0 on one processor.
        (
            TaskSet::from_pairs(&[(1, 2), (2, 4), (4, 8), (8, 16), (16, 32), (32, 64)]).unwrap(),
            1,
        ),
        // Many medium tasks just over capacity.
        (
            TaskSet::from_pairs(&[
                (3_000, 10_000),
                (3_000, 10_000),
                (3_000, 10_000),
                (3_000, 10_000),
                (3_000, 10_000),
                (3_000, 10_000),
                (3_000, 10_000),
            ])
            .unwrap(),
            2,
        ),
    ]
}

fn algorithms(n: usize) -> Vec<Box<dyn Partitioner>> {
    vec![
        Box::new(RmTs::new()),
        Box::new(RmTsLight::new()),
        Box::new(spa1(n)),
        Box::new(spa2(n)),
        Box::new(PartitionedRm::ffd_rta()),
    ]
}

#[test]
fn rejections_carry_consistent_diagnostics() {
    for (ts, m) in overloaded_sets() {
        for alg in algorithms(ts.len()) {
            let reject = alg
                .partition(&ts, m)
                .err()
                .unwrap_or_else(|| panic!("{} accepted an overloaded set: {ts}", alg.name()));
            // The unassigned remainder is non-empty and names real tasks.
            assert!(
                !reject.unassigned.is_empty(),
                "{}: rejection with empty unassigned set",
                alg.name()
            );
            for id in &reject.unassigned {
                assert!(
                    ts.tasks().iter().any(|t| t.id == *id),
                    "{}: unassigned {id} not in the input",
                    alg.name()
                );
            }
            // The blamed task is one of the unassigned ones.
            if let Some(task) = reject.task {
                assert!(
                    reject.unassigned.contains(&task),
                    "{}: blamed task {task} missing from unassigned {:?}",
                    alg.name(),
                    reject.unassigned
                );
            }
            // Bottlenecks point at actual processors of the partial
            // partition, with at most one entry per processor.
            assert!(
                !reject.bottlenecks.is_empty(),
                "{}: rejection with no bottleneck processors",
                alg.name()
            );
            let mut procs: Vec<usize> = reject.bottlenecks.iter().map(|b| b.processor).collect();
            procs.sort_unstable();
            procs.dedup();
            assert_eq!(
                procs.len(),
                reject.bottlenecks.len(),
                "{}: duplicate bottleneck processors",
                alg.name()
            );
            for b in &reject.bottlenecks {
                assert!(
                    b.processor < m,
                    "{}: bottleneck on nonexistent processor {}",
                    alg.name(),
                    b.processor
                );
            }
            // The human-readable rendering names the phase.
            let msg = reject.to_string();
            assert!(
                msg.contains(&reject.phase.to_string()),
                "{}: display {msg:?} does not mention phase {}",
                alg.name(),
                reject.phase
            );
        }
    }
}

#[test]
fn reject_round_trips_through_serde_json() {
    let (ts, m) = overloaded_sets().remove(0);
    for alg in algorithms(ts.len()) {
        let reject = alg.partition(&ts, m).expect_err("overloaded set rejects");
        let json = serde_json::to_string(&reject).expect("serializes");
        let back: PartitionReject = serde_json::from_str(&json).expect("parses back");
        assert_eq!(*reject, back, "{}: lossy serde round-trip", alg.name());
    }
}

#[test]
fn acceptance_never_produces_reject_diagnostics() {
    // Sanity inverse: a comfortably schedulable set is accepted by all
    // algorithms, so the diagnostics path stays cold.
    let ts = TaskSet::from_pairs(&[(1_000, 10_000), (2_000, 20_000), (4_000, 40_000)]).unwrap();
    for alg in algorithms(ts.len()) {
        assert!(
            alg.partition(&ts, 2).is_ok(),
            "{} rejected a trivially feasible set",
            alg.name()
        );
    }
}
