//! An end-to-end "design flow" exercise, chaining the extension APIs the
//! way a system designer would: harmonize → size by bound → partition →
//! audit → overhead check → simulate.

use rmts::core::audit::audit;
use rmts::core::overhead::{inflate, overhead_tolerance, OverheadModel};
use rmts::exp::sizing::{min_processors_by_bound, min_processors_by_partitioning};
use rmts::prelude::*;
use rmts::taskmodel::harmonic::taskset_is_harmonic;
use rmts::taskmodel::transform::{best_harmonization_base, harmonize};

/// A near-harmonic industrial-looking workload.
fn workload() -> TaskSet {
    TaskSetBuilder::new()
        .task_us(2_000, 10_000)
        .task_us(3_500, 11_000)
        .task_us(4_000, 21_000)
        .task_us(5_000, 23_000)
        .task_us(9_000, 42_000)
        .task_us(8_000, 44_000)
        .task_us(15_000, 85_000)
        .task_us(20_000, 90_000)
        .task_us(2_500, 10_500)
        .task_us(6_000, 22_000)
        .build()
        .unwrap()
}

#[test]
fn full_design_flow() {
    let ts = workload();
    assert!(!taskset_is_harmonic(&ts));

    // 1. Harmonize onto the best base.
    let (base, cost) = best_harmonization_base(&ts, Time::from_us(5_000)).unwrap();
    assert!((1.0..1.5).contains(&cost), "inflation {cost} out of range");
    let h = harmonize(&ts, base).unwrap();
    assert!(taskset_is_harmonic(&h));

    // 2. Size the platform by the (now 100%) harmonic-chain bound.
    let m = min_processors_by_bound(&h, &HarmonicChain);
    assert!(m >= (h.total_utilization().ceil() as usize));

    // 3. Partition on the sized platform; the bound guarantees success.
    let alg = RmTs::new().with_bound(HarmonicChain);
    assert!(h.normalized_utilization(m) <= alg.effective_bound(&h) + 1e-12);
    let partition = alg.partition(&h, m).expect("guaranteed by the bound");

    // 4. Structural audit: clean.
    assert!(audit(&partition, &h).is_empty());

    // 5. Overhead budget: the partition absorbs a measurable per-event
    //    cost, and the inflated partition still audits/verifies.
    let tol = overhead_tolerance(&partition);
    let inflated = inflate(&partition, &OverheadModel::uniform(tol));
    assert!(inflated.verify_rta());

    // 6. Execute one hyperperiod of the (uninflated) partition.
    let report = simulate_partitioned(&partition.workloads(), SimConfig::default());
    assert!(report.all_deadlines_met());

    // 7. Exact sizing can never need more processors than the bound said.
    let exact = min_processors_by_partitioning(&h, &alg, m).unwrap();
    assert!(exact <= m);
}

#[test]
fn bound_sizing_matches_theorem_on_the_original_set() {
    // Without harmonizing, sizing must use the original (lower) bound, and
    // RM-TS must still accept on that many processors.
    let ts = workload();
    let m = min_processors_by_bound(&ts, &HarmonicChain);
    let alg = RmTs::new().with_bound(HarmonicChain);
    assert!(ts.normalized_utilization(m) <= alg.effective_bound(&ts) + 1e-12);
    let partition = alg.partition(&ts, m).expect("inside the bound");
    assert!(audit(&partition, &ts).is_empty());
    assert!(partition.verify_rta());
}

#[test]
fn best_of_bound_dominates_in_the_flow() {
    let ts = workload();
    let best = BestOf::standard();
    let m_best = min_processors_by_bound(&ts, &best);
    let m_ll = min_processors_by_bound(&ts, &LiuLayland);
    assert!(
        m_best <= m_ll,
        "a better bound can only shrink the platform"
    );
}
