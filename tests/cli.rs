//! End-to-end tests of the `rmts-cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rmts-cli"))
}

fn write_demo_taskset() -> temppath::TempPath {
    let json = r#"[
        {"id": 0, "wcet": 2000, "period": 10000},
        {"id": 1, "wcet": 5000, "period": 20000},
        {"id": 2, "wcet": 10000, "period": 40000},
        {"id": 3, "wcet": 4000, "period": 10000}
    ]"#;
    temppath::TempPath::new("rmts_cli_demo.json", json)
}

/// Minimal self-cleaning temp-file helper (std only).
mod temppath {
    use std::path::PathBuf;

    pub struct TempPath(PathBuf);

    impl TempPath {
        pub fn new(name: &str, contents: &str) -> TempPath {
            let p = std::env::temp_dir().join(format!("{}_{name}", std::process::id()));
            std::fs::write(&p, contents).expect("write temp file");
            TempPath(p)
        }
        pub fn as_str(&self) -> &str {
            self.0.to_str().expect("utf-8 path")
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }
}

#[test]
fn bounds_command_reports_catalogue() {
    let ts = write_demo_taskset();
    let out = cli().args(["bounds", ts.as_str()]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Liu&Layland"));
    assert!(stdout.contains("harmonic-chain"));
    assert!(stdout.contains("T-Bound"));
    assert!(stdout.contains("R-Bound"));
    assert!(stdout.contains("harmonic chains: K = 1"));
}

#[test]
fn partition_simulate_gantt() {
    let ts = write_demo_taskset();
    let out = cli()
        .args([
            "partition",
            ts.as_str(),
            "-m",
            "2",
            "--alg",
            "rmts",
            "--gantt",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("RTA verification: OK"));
    assert!(stdout.contains("0 misses"));
    assert!(stdout.contains("P0 |"));
    assert!(stdout.contains("P1 |"));
}

#[test]
fn check_command_lists_all_algorithms() {
    let ts = write_demo_taskset();
    let out = cli()
        .args(["check", ts.as_str(), "-m", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in [
        "RM-TS[Liu&Layland]",
        "RM-TS/light",
        "SPA1",
        "SPA2",
        "P-RM-FFD/RTA",
    ] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn generate_roundtrips_through_partition() {
    let out = cli()
        .args([
            "generate", "-n", "8", "-u", "1.5", "--seed", "3", "--cap", "0.5",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let ts = temppath::TempPath::new("rmts_cli_gen.json", &String::from_utf8_lossy(&out.stdout));
    let out2 = cli()
        .args(["partition", ts.as_str(), "-m", "2", "--simulate"])
        .output()
        .unwrap();
    assert!(
        out2.status.success(),
        "{}",
        String::from_utf8_lossy(&out2.stderr)
    );
    assert!(String::from_utf8_lossy(&out2.stdout).contains("0 misses"));
}

#[test]
fn help_prints_usage() {
    let out = cli().args(["help"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage"));
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = cli().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage"));

    let out = cli()
        .args(["partition", "/nonexistent.json", "-m", "2"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn partition_stats_emits_snapshot_json() {
    let ts = write_demo_taskset();
    let out = cli()
        .args(["partition", ts.as_str(), "-m", "2", "--stats"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // `--stats` implies a simulation run, so the snapshot spans all layers.
    assert!(stdout.contains("simulation over"));
    let json_start = stdout.find('{').expect("JSON snapshot in output");
    let snap: rmts::obs::StatsSnapshot =
        serde_json::from_str(&stdout[json_start..]).expect("snapshot parses");
    assert!(snap.counter("core.admission.probes") > 0);
    assert_eq!(
        snap.counter("rta.cache.hits") + snap.counter("rta.cache.misses"),
        snap.counter("rta.cache.probes")
    );
    assert!(snap.counter("sim.events") > 0);
    assert!(snap.histogram("core.phase.assign_normal_ns").is_some());
    // And the snapshot is a faithful serde citizen: serialize → parse is
    // the identity.
    let again: rmts::obs::StatsSnapshot =
        serde_json::from_str(&serde_json::to_string(&snap).unwrap()).unwrap();
    assert_eq!(snap, again, "--stats snapshot is lossy under serde_json");
}

#[test]
fn fuzz_quick_is_deterministic_and_clean() {
    let run = || {
        cli()
            .args([
                "fuzz", "--quick", "--seed", "42", "--trials", "60", "--json",
            ])
            .output()
            .unwrap()
    };
    let (a, b) = (run(), run());
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    // Same seed ⇒ bit-identical report, regardless of worker threads.
    assert_eq!(a.stdout, b.stdout, "fuzz report is not deterministic");
    let report: rmts::verify::CampaignReport =
        serde_json::from_str(&String::from_utf8_lossy(&a.stdout)).expect("JSON report");
    assert!(report.clean(), "{}", report.render());
    assert_eq!(report.generated, 60);
}

#[test]
fn fuzz_replays_checked_in_corpus() {
    // Divergent reproducers replay as *expected* divergences, so the
    // replay exits 0; a lost divergence or a new one would fail.
    let out = cli()
        .args(["fuzz", "--replay", "tests/corpus"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("all match expectations"));
}

#[test]
fn fuzz_replay_of_missing_directory_fails() {
    // (The divergence exit path — code 2 — needs the test-only weakened
    // SUT, which the CLI deliberately does not expose; it is covered by
    // the crates/verify fault-injection tests.)
    let out = cli()
        .args(["fuzz", "--replay", "/nonexistent-corpus-dir"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn partition_reports_exactness_and_accepts_a_budget() {
    let ts = write_demo_taskset();
    // A generous wall-clock deadline: the budget machinery engages but
    // never exhausts, so the partition stays labeled exact.
    let out = cli()
        .args([
            "partition",
            ts.as_str(),
            "-m",
            "2",
            "--alg",
            "light",
            "--deadline-ms",
            "60000",
            "--degrade",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("exactness: exact"), "{stdout}");
    assert!(stdout.contains("RTA verification: OK"));
}

#[test]
fn budget_flags_are_rejected_for_unbudgeted_algorithms() {
    // `prm` is the one algorithm with no metered analysis; the budgeted
    // splitting family (rmts/light/spa1/spa2) all honor the flags.
    let ts = write_demo_taskset();
    let out = cli()
        .args([
            "partition",
            ts.as_str(),
            "-m",
            "2",
            "--alg",
            "prm",
            "--degrade",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--deadline-ms/--degrade"));
}

#[test]
fn fuzz_panic_trial_finishes_lists_the_fault_and_exits_2() {
    let out = cli()
        .args([
            "fuzz",
            "--quick",
            "--seed",
            "42",
            "--trials",
            "20",
            "--panic-trial",
            "7",
        ])
        .output()
        .unwrap();
    // The campaign completed (a real panic would kill the process with a
    // different status) and signals "not clean" via exit code 2.
    assert_eq!(out.status.code(), Some(2));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fault s42-t7"), "{stdout}");
    assert!(stdout.contains("injected campaign fault at trial 7"));
    assert!(stdout.contains("1 FAULTS"));
}

#[test]
fn serve_batch_answers_jsonl_in_order_with_memoization() {
    use rmts::svc::wire::ResponseRecord;
    use rmts::svc::{AlgorithmSpec, AnalyzeRequest, Verdict};

    let dup = AnalyzeRequest::new(
        vec![(2_000, 10_000), (5_000, 20_000), (4_000, 10_000)],
        2,
        AlgorithmSpec::RmTsLight,
    );
    let distinct =
        AnalyzeRequest::new(vec![(1_000, 4_000), (3_000, 9_000)], 1, AlgorithmSpec::Spa2);
    let mut lines = String::from("# rmts-cli serve-batch smoke input\n\n");
    for req in [&dup, &dup, &distinct] {
        lines.push_str(&serde_json::to_string(req).unwrap());
        lines.push('\n');
    }
    let input = temppath::TempPath::new("rmts_cli_batch.jsonl", &lines);
    let out = cli()
        .args(["serve-batch", input.as_str(), "--shards", "2"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let records: Vec<ResponseRecord> = stdout
        .lines()
        .map(|l| serde_json::from_str(l).expect("response line parses"))
        .collect();
    assert_eq!(records.len(), 3);
    for (i, rec) in records.iter().enumerate() {
        assert_eq!(rec.index, i, "responses come back in request order");
        assert!(matches!(rec.outcome.verdict, Verdict::Accepted { .. }));
    }
    // The duplicate was served from the memo table, bit-identically.
    assert!(records[1].memo_hit);
    assert_eq!(records[0].outcome, records[1].outcome);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("1 memo hit(s), 2 miss(es)"), "{stderr}");
}

#[test]
fn serve_batch_locates_malformed_request_lines() {
    let input = temppath::TempPath::new("rmts_cli_bad_batch.jsonl", "# ok\nnot json\n");
    let out = cli()
        .args(["serve-batch", input.as_str()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("request line 2"));
}

#[test]
fn overloaded_set_reports_failure() {
    let ts = temppath::TempPath::new(
        "rmts_cli_overload.json",
        r#"[
            {"id": 0, "wcet": 9000, "period": 10000},
            {"id": 1, "wcet": 9000, "period": 10000},
            {"id": 2, "wcet": 9000, "period": 10000}
        ]"#,
    );
    let out = cli()
        .args(["partition", ts.as_str(), "-m", "2", "--alg", "rmts"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("partitioning failed"));
}
