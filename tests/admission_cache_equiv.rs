//! End-to-end property test: full partitioning runs driven through the
//! incremental admission cache produce *identical* partitions to runs that
//! re-analyze every admission from scratch.
//!
//! The per-call parity (probe ≡ `admits_budget`, cached MaxSplit ≡ scratch
//! MaxSplit) is proven in `rmts-rta`'s `cache_equivalence` suite; this test
//! closes the loop at the engine level, where cache state is carried across
//! thousands of admission decisions, invalidated on mutation, and consulted
//! by both whole-task placement and tail splitting. Any drift — a stale
//! response, a wrongly warm-started fixed point, a missed invalidation —
//! shows up as a structurally different partition.

use proptest::prelude::*;
use rmts::core::admission::AdmissionPolicy;
use rmts::prelude::*;
use rmts::taskmodel::TaskSet;

/// Runs one instance through a warm, possibly dirty [`PartitionWorkspace`]
/// and asserts the result is bit-identical to a fresh `partition()` call —
/// the cross-processor/cross-set reuse contract. Recycles the outcome so
/// the *next* call through the same workspace starts from this instance's
/// leftovers, which is exactly the state the property must hold under.
fn assert_workspace_parity(
    engine: &dyn Partitioner,
    ts: &TaskSet,
    m: usize,
    ws: &mut PartitionWorkspace,
    ctx: &str,
) {
    let fresh = engine.partition(ts, m);
    let warm = engine.partition_with(ts, m, ws);
    match (fresh, warm) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a, b, "{ctx}: warm workspace diverged from fresh run");
            ws.recycle(b);
        }
        (Err(a), Err(b)) => {
            let (a, b) = (*a, *b);
            assert_eq!(a, b, "{ctx}: warm workspace reject diverged");
            ws.recycle(b.partial);
        }
        (a, b) => panic!(
            "{ctx}: verdicts differ (fresh ok={}, warm ok={})",
            a.is_ok(),
            b.is_ok()
        ),
    }
}

/// A feasible-ish random task set plus a processor count (same shape as the
/// `splitting_invariants` generator: utilization 40–95% of capacity, so both
/// accepted and rejected instances occur).
fn arb_instance() -> impl Strategy<Value = (TaskSet, usize)> {
    (2usize..=4, 4usize..=12, 40u64..95).prop_flat_map(|(m, n, u_pct)| {
        let total = u_pct as f64 / 100.0 * m as f64;
        proptest::collection::vec((1u64..=4, 1u64..100), n).prop_map(move |raw| {
            let menu = [5_000u64, 10_000, 15_000, 20_000, 30_000, 60_000];
            let wsum: f64 = raw.iter().map(|&(_, w)| w as f64).sum();
            let tasks: Vec<Task> = raw
                .iter()
                .enumerate()
                .map(|(i, &(pm, w))| {
                    let t = menu[(pm as usize + i) % menu.len()];
                    let u = (total * w as f64 / wsum).min(0.95);
                    let c = ((t as f64) * u).floor().max(1.0) as u64;
                    Task::from_ticks(i as u32, c.min(t), t).unwrap()
                })
                .collect();
            (TaskSet::new(tasks).unwrap(), m)
        })
    })
}

/// Both ExactRta variants for one MaxSplit strategy.
fn policy_pair(strategy: MaxSplitStrategy) -> (AdmissionPolicy, AdmissionPolicy) {
    (
        AdmissionPolicy::ExactRta {
            strategy,
            cached: true,
        },
        AdmissionPolicy::ExactRta {
            strategy,
            cached: false,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// RM-TS/light: cached and scratch admission yield identical outcomes —
    /// same accept/reject verdict, and bit-identical partitions (processor
    /// workloads, recorded responses via synthetic deadlines, split plans).
    #[test]
    fn rmts_light_cached_equals_scratch((ts, m) in arb_instance()) {
        for strategy in [MaxSplitStrategy::BinarySearch, MaxSplitStrategy::SchedulingPoints] {
            let (cached, scratch) = policy_pair(strategy);
            let a = RmTsLight::new().with_policy(cached).partition(&ts, m);
            let b = RmTsLight::new().with_policy(scratch).partition(&ts, m);
            match (a, b) {
                (Ok(pa), Ok(pb)) => prop_assert_eq!(pa, pb, "{:?}: partitions differ", strategy),
                (Err(fa), Err(fb)) => {
                    prop_assert_eq!(&fa.unassigned, &fb.unassigned, "{:?}", strategy);
                    prop_assert_eq!(&fa.partial, &fb.partial, "{:?}", strategy);
                }
                (a, b) => prop_assert!(false,
                    "{:?}: verdicts differ (cached ok={}, scratch ok={})",
                    strategy, a.is_ok(), b.is_ok()),
            }
        }
    }

    /// RM-TS (the parametric-bound algorithm, with pre-assignment and
    /// dedicated processors): cached ≡ scratch, both strategies.
    #[test]
    fn rmts_cached_equals_scratch((ts, m) in arb_instance()) {
        for strategy in [MaxSplitStrategy::BinarySearch, MaxSplitStrategy::SchedulingPoints] {
            let (cached, scratch) = policy_pair(strategy);
            let a = RmTs::new().with_policy(cached).partition(&ts, m);
            let b = RmTs::new().with_policy(scratch).partition(&ts, m);
            match (a, b) {
                (Ok(pa), Ok(pb)) => prop_assert_eq!(pa, pb, "{:?}: partitions differ", strategy),
                (Err(fa), Err(fb)) => {
                    prop_assert_eq!(&fa.unassigned, &fb.unassigned, "{:?}", strategy);
                    prop_assert_eq!(&fa.partial, &fb.partial, "{:?}", strategy);
                }
                (a, b) => prop_assert!(false,
                    "{:?}: verdicts differ (cached ok={}, scratch ok={})",
                    strategy, a.is_ok(), b.is_ok()),
            }
        }
    }

    /// The strict-partitioning baseline also routes its RTA admission
    /// through the processor cache; its decisions must match a scratch
    /// uniprocessor analysis of each host's workload.
    #[test]
    fn partitioned_rm_cache_is_sound((ts, m) in arb_instance()) {
        let Ok(part) = PartitionedRm::ffd_rta().partition(&ts, m) else { return Ok(()) };
        prop_assert!(part.verify_rta());
        prop_assert!(audit(&part, &ts).is_empty());
    }

    /// Cross-set workspace reuse: ONE workspace carried dirty across a
    /// sequence of instances, alternating engines and strategies, always
    /// produces partitions bit-identical to fresh scratch-workspace runs.
    /// This is the reuse contract the service shards and the partition
    /// bench rely on.
    #[test]
    fn workspace_reuse_equals_fresh(instances in proptest::collection::vec(arb_instance(), 2..4)) {
        let mut ws = PartitionWorkspace::new();
        for (i, (ts, m)) in instances.iter().enumerate() {
            for strategy in [MaxSplitStrategy::BinarySearch, MaxSplitStrategy::SchedulingPoints] {
                let policy = AdmissionPolicy::exact().with_strategy(strategy);
                assert_workspace_parity(
                    &RmTsLight::new().with_policy(policy),
                    ts, *m, &mut ws,
                    &format!("instance {i}, RM-TS/light, {strategy:?}"),
                );
                assert_workspace_parity(
                    &RmTs::new().with_policy(policy),
                    ts, *m, &mut ws,
                    &format!("instance {i}, RM-TS, {strategy:?}"),
                );
            }
        }
    }
}

/// The EXP-1 generator mix (log-uniform periods, unconstrained
/// utilizations, `n = 4·m`), deterministic seeds: the same distribution
/// the paper's acceptance-ratio experiment and the partition bench draw
/// from, pushed through one reused workspace.
#[test]
fn exp1_generator_mix_workspace_parity() {
    let mut ws = PartitionWorkspace::new();
    let mut generated = 0;
    for m in [4usize, 8] {
        for trial in 0..4u64 {
            let cfg = GenConfig::new(4 * m, 0.72 * m as f64)
                .with_periods(PeriodGen::LogUniform {
                    min: 10_000,
                    max: 1_000_000,
                    granularity: 10_000,
                })
                .with_utilization(UtilizationSpec::any());
            let mut rng = rmts::gen::trial_rng(0x52_4D_54_53, (m as u64) << 8 | trial);
            let Some(ts) = cfg.generate(&mut rng) else {
                continue;
            };
            generated += 1;
            assert_workspace_parity(
                &RmTsLight::new(),
                &ts,
                m,
                &mut ws,
                &format!("EXP-1 m={m} trial={trial}, RM-TS/light"),
            );
            assert_workspace_parity(
                &RmTs::new(),
                &ts,
                m,
                &mut ws,
                &format!("EXP-1 m={m} trial={trial}, RM-TS"),
            );
        }
    }
    assert!(generated >= 4, "generator produced too few instances");
}

/// Every reproducer in the checked-in fuzz corpus — shrunk counterexample
/// task sets that historically exposed analysis drift — also partitions
/// identically through a warm reused workspace.
#[test]
fn fuzz_corpus_workspace_parity() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let repros = rmts::verify::load_corpus(&dir).expect("corpus parses");
    assert!(!repros.is_empty(), "corpus is empty");
    let mut ws = PartitionWorkspace::new();
    for r in &repros {
        assert_workspace_parity(
            &RmTsLight::new(),
            &r.taskset,
            r.m,
            &mut ws,
            &format!("corpus {} RM-TS/light", r.name),
        );
        assert_workspace_parity(
            &RmTs::new(),
            &r.taskset,
            r.m,
            &mut ws,
            &format!("corpus {} RM-TS", r.name),
        );
    }
}
