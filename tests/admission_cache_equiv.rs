//! End-to-end property test: full partitioning runs driven through the
//! incremental admission cache produce *identical* partitions to runs that
//! re-analyze every admission from scratch.
//!
//! The per-call parity (probe ≡ `admits_budget`, cached MaxSplit ≡ scratch
//! MaxSplit) is proven in `rmts-rta`'s `cache_equivalence` suite; this test
//! closes the loop at the engine level, where cache state is carried across
//! thousands of admission decisions, invalidated on mutation, and consulted
//! by both whole-task placement and tail splitting. Any drift — a stale
//! response, a wrongly warm-started fixed point, a missed invalidation —
//! shows up as a structurally different partition.

use proptest::prelude::*;
use rmts::core::admission::AdmissionPolicy;
use rmts::prelude::*;
use rmts::taskmodel::TaskSet;

/// A feasible-ish random task set plus a processor count (same shape as the
/// `splitting_invariants` generator: utilization 40–95% of capacity, so both
/// accepted and rejected instances occur).
fn arb_instance() -> impl Strategy<Value = (TaskSet, usize)> {
    (2usize..=4, 4usize..=12, 40u64..95).prop_flat_map(|(m, n, u_pct)| {
        let total = u_pct as f64 / 100.0 * m as f64;
        proptest::collection::vec((1u64..=4, 1u64..100), n).prop_map(move |raw| {
            let menu = [5_000u64, 10_000, 15_000, 20_000, 30_000, 60_000];
            let wsum: f64 = raw.iter().map(|&(_, w)| w as f64).sum();
            let tasks: Vec<Task> = raw
                .iter()
                .enumerate()
                .map(|(i, &(pm, w))| {
                    let t = menu[(pm as usize + i) % menu.len()];
                    let u = (total * w as f64 / wsum).min(0.95);
                    let c = ((t as f64) * u).floor().max(1.0) as u64;
                    Task::from_ticks(i as u32, c.min(t), t).unwrap()
                })
                .collect();
            (TaskSet::new(tasks).unwrap(), m)
        })
    })
}

/// Both ExactRta variants for one MaxSplit strategy.
fn policy_pair(strategy: MaxSplitStrategy) -> (AdmissionPolicy, AdmissionPolicy) {
    (
        AdmissionPolicy::ExactRta {
            strategy,
            cached: true,
        },
        AdmissionPolicy::ExactRta {
            strategy,
            cached: false,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// RM-TS/light: cached and scratch admission yield identical outcomes —
    /// same accept/reject verdict, and bit-identical partitions (processor
    /// workloads, recorded responses via synthetic deadlines, split plans).
    #[test]
    fn rmts_light_cached_equals_scratch((ts, m) in arb_instance()) {
        for strategy in [MaxSplitStrategy::BinarySearch, MaxSplitStrategy::SchedulingPoints] {
            let (cached, scratch) = policy_pair(strategy);
            let a = RmTsLight::new().with_policy(cached).partition(&ts, m);
            let b = RmTsLight::new().with_policy(scratch).partition(&ts, m);
            match (a, b) {
                (Ok(pa), Ok(pb)) => prop_assert_eq!(pa, pb, "{:?}: partitions differ", strategy),
                (Err(fa), Err(fb)) => {
                    prop_assert_eq!(&fa.unassigned, &fb.unassigned, "{:?}", strategy);
                    prop_assert_eq!(&fa.partial, &fb.partial, "{:?}", strategy);
                }
                (a, b) => prop_assert!(false,
                    "{:?}: verdicts differ (cached ok={}, scratch ok={})",
                    strategy, a.is_ok(), b.is_ok()),
            }
        }
    }

    /// RM-TS (the parametric-bound algorithm, with pre-assignment and
    /// dedicated processors): cached ≡ scratch, both strategies.
    #[test]
    fn rmts_cached_equals_scratch((ts, m) in arb_instance()) {
        for strategy in [MaxSplitStrategy::BinarySearch, MaxSplitStrategy::SchedulingPoints] {
            let (cached, scratch) = policy_pair(strategy);
            let a = RmTs::new().with_policy(cached).partition(&ts, m);
            let b = RmTs::new().with_policy(scratch).partition(&ts, m);
            match (a, b) {
                (Ok(pa), Ok(pb)) => prop_assert_eq!(pa, pb, "{:?}: partitions differ", strategy),
                (Err(fa), Err(fb)) => {
                    prop_assert_eq!(&fa.unassigned, &fb.unassigned, "{:?}", strategy);
                    prop_assert_eq!(&fa.partial, &fb.partial, "{:?}", strategy);
                }
                (a, b) => prop_assert!(false,
                    "{:?}: verdicts differ (cached ok={}, scratch ok={})",
                    strategy, a.is_ok(), b.is_ok()),
            }
        }
    }

    /// The strict-partitioning baseline also routes its RTA admission
    /// through the processor cache; its decisions must match a scratch
    /// uniprocessor analysis of each host's workload.
    #[test]
    fn partitioned_rm_cache_is_sound((ts, m) in arb_instance()) {
        let Ok(part) = PartitionedRm::ffd_rta().partition(&ts, m) else { return Ok(()) };
        prop_assert!(part.verify_rta());
        prop_assert!(audit(&part, &ts).is_empty());
    }
}
