//! Paper Figure 2: why naive deadline-as-period reasoning breaks parametric
//! bounds, and how the paper's machinery handles it.
//!
//! The figure's scenario: a harmonic task set is partitioned; τ2 is split
//! into τ2¹ (on P1) and τ2² (on P2). Synchronizing τ2² behind τ2¹
//! effectively shortens τ2²'s deadline. Representing the shortened deadline
//! as a period (Fig. 2-(d)) destroys harmonicity, so the 100% bound no
//! longer applies on P2 — the problem RM-TS's proof technique solves.

use rmts::prelude::*;
use rmts::taskmodel::harmonic::{is_harmonic, taskset_is_harmonic};
use rmts::taskmodel::SplitPlan;

/// The flavor of Figure 2: τ1 = (1, 4) and τ2 = (6, 8) harmonic; splitting
/// τ2 leaves a tail with synthetic deadline 6, and {4, 6} is not harmonic.
#[test]
fn splitting_a_harmonic_set_breaks_harmonicity_of_the_deadline_view() {
    let ts = TaskSetBuilder::new().task(1, 4).task(6, 8).build().unwrap();
    assert!(taskset_is_harmonic(&ts));

    // Split τ2 (id 1, priority 1): body of 2 ticks on P1, tail on P2.
    let (prio, task) = ts.find(TaskId(1)).unwrap();
    let mut plan = SplitPlan::new(*task, prio);
    plan.push_body(Time::new(2), 0, Time::new(2)).unwrap();
    plan.seal_tail(1, Time::new(4)).unwrap();
    let subs = plan.subtasks();
    let tail = subs[1].0;
    assert_eq!(tail.deadline, Time::new(6)); // 8 − 2
    assert!(tail.is_deadline_constrained());

    // Fig. 2-(d): representing the tail's period by its deadline gives the
    // period multiset {4, 6} on P2's side — no longer harmonic, so the
    // 100% bound is NOT applicable to that transformed set.
    assert!(!is_harmonic(&[Time::new(4), tail.deadline]));
    // The original periods of course still are.
    assert!(is_harmonic(&[Time::new(4), tail.period]));
}

/// RM-TS/light nevertheless achieves the 100% bound on such sets: exact
/// RTA against synthetic deadlines does not need the transformed set to be
/// harmonic (the paper's Lemma 6 / period-shrinking proof).
#[test]
fn rmts_light_still_achieves_the_harmonic_bound_despite_splitting() {
    // Light harmonic set at exactly U_M = 1.0 on 2 processors; worst-fit
    // placement will force at least one split.
    let mut b = TaskSetBuilder::new();
    for _ in 0..8 {
        b = b.task(1, 4); // U = 0.25 each, 8 tasks → U = 2.0
    }
    let ts = b.build().unwrap();
    assert!(taskset_is_harmonic(&ts));
    assert!((ts.normalized_utilization(2) - 1.0).abs() < 1e-12);

    let partition = RmTsLight::new().partition(&ts, 2).unwrap();
    assert!(partition.covers(&ts));
    assert!(partition.verify_rta());

    // Dynamic confirmation over the hyperperiod.
    let report = simulate_partitioned(&partition.workloads(), SimConfig::default());
    assert!(report.all_deadlines_met());
}

/// The SPA1 baseline applies the L&L bound through the deadline-as-period
/// transformation (the [16] resolution of Figure 2) and therefore cannot
/// exceed Θ(N) on this harmonic set — the exact gap the paper closes.
#[test]
fn threshold_baseline_stuck_at_ll_even_on_harmonic_sets() {
    let mut b = TaskSetBuilder::new();
    for _ in 0..8 {
        b = b.task(100, 400); // 1-tick WCETs cannot deflate; use 100 ticks
    }
    let ts = b.build().unwrap();
    // At U_M = 1.0 SPA1 must reject...
    assert!(!spa1(ts.len()).accepts(&ts, 2));
    // ...but below Θ(N) it accepts (its proven domain).
    let below = ts.deflated(0.69);
    assert!(spa1(below.len()).accepts(&below, 2));
}
