//! Sporadic-release validation: the paper's task model is sporadic
//! (`T` is the *minimum* inter-release separation); the synchronous
//! periodic pattern the analysis assumes is the worst case. Hence any
//! RTA-verified partition must stay deadline-miss-free when releases are
//! delayed arbitrarily.

use rmts::gen::trial_rng;
use rmts::prelude::*;
use rmts::sim::ReleaseModel;
use rmts::taskmodel::Time;

#[test]
fn sporadic_releases_never_hurt_verified_partitions() {
    let mut checked = 0;
    for trial in 0..30u64 {
        let mut rng = trial_rng(0x5B0, trial);
        let m = 2 + (trial % 3) as usize;
        let cfg = GenConfig::new(4 * m, 0.85 * m as f64)
            .with_periods(PeriodGen::Choice(vec![5_000, 10_000, 20_000, 40_000]));
        let Some(ts) = cfg.generate(&mut rng) else {
            continue;
        };
        let Ok(partition) = RmTs::new().partition(&ts, m) else {
            continue;
        };
        assert!(partition.verify_rta());
        // Several jitter magnitudes, several seeds.
        for (max_delay, seed) in [(1_000u64, 1u64), (7_777, 2), (40_000, 3)] {
            let config = SimConfig::sporadic(max_delay, seed, Time::new(2_000_000));
            let report = simulate_partitioned(&partition.workloads(), config);
            assert!(
                report.all_deadlines_met(),
                "trial {trial}: sporadic run (delay ≤ {max_delay}, seed {seed}) \
                 missed a deadline — periodic must be the worst case"
            );
            checked += 1;
        }
    }
    assert!(checked >= 45, "too few sporadic runs: {checked}");
}

#[test]
fn sporadic_responses_bounded_by_periodic_worst_case() {
    // Single processor, clean comparison: per task, the max response under
    // sporadic arrivals never exceeds the synchronous-periodic maximum.
    let ts = TaskSetBuilder::new()
        .task(2, 10)
        .task(3, 15)
        .task(4, 30)
        .build()
        .unwrap();
    let workload: Vec<Subtask> = ts
        .iter_prioritized()
        .map(|(p, t)| Subtask::whole(t, p))
        .collect();
    let periodic = simulate_partitioned(&[&workload], SimConfig::default());
    assert!(periodic.all_deadlines_met());
    for seed in 0..20u64 {
        let sporadic =
            simulate_partitioned(&[&workload], SimConfig::sporadic(9, seed, Time::new(3_000)));
        assert!(sporadic.all_deadlines_met());
        for t in ts.tasks() {
            if let (Some(s), Some(p)) = (sporadic.response_of(t.id), periodic.response_of(t.id)) {
                assert!(
                    s <= p,
                    "seed {seed}: τ{} sporadic response {s} exceeds periodic worst case {p}",
                    t.id.0
                );
            }
        }
    }
}

#[test]
fn sporadic_model_is_deterministic_per_seed() {
    let ts = TaskSetBuilder::new()
        .task(2, 10)
        .task(5, 14)
        .build()
        .unwrap();
    let workload: Vec<Subtask> = ts
        .iter_prioritized()
        .map(|(p, t)| Subtask::whole(t, p))
        .collect();
    let run = |seed| {
        simulate_partitioned(
            &[&workload],
            SimConfig::sporadic(5, seed, Time::new(10_000)),
        )
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7).jobs_completed, 0);
    // Different seeds genuinely change the arrival pattern: over many seeds
    // at least one report must differ from seed 7's.
    let base = run(7);
    assert!(
        (8..20).any(|s| run(s) != base),
        "jitter seeds had no observable effect"
    );
}

#[test]
fn global_simulator_supports_sporadic_too() {
    let ts = TaskSetBuilder::new()
        .task(2, 10)
        .task(2, 10)
        .task(6, 20)
        .build()
        .unwrap();
    let config = SimConfig {
        horizon: Some(Time::new(100_000)),
        stop_on_first_miss: true,
        release: ReleaseModel::Sporadic {
            max_delay: 500,
            seed: 11,
        },
    };
    let report = simulate_global(&ts, 2, config);
    assert!(report.all_deadlines_met());
    assert!(report.jobs_completed > 0);
}
