//! Numeric anchors stated in the paper's text, verified exactly.

use rmts::bounds::harmonic_chain::hc_bound;
use rmts::bounds::thresholds::{light_threshold, rmts_cap};
use rmts::prelude::*;

/// Footnote 1: "When N goes to infinity, 2Θ/(1+Θ) ≈ 81.8%, Θ ≈ 69.3%,
/// Θ/(1+Θ) ≈ 40.9%".
#[test]
fn footnote_1_asymptotics() {
    let theta = std::f64::consts::LN_2;
    assert!((theta - 0.693).abs() < 5e-4);
    assert!((light_threshold(theta) - 0.409).abs() < 5e-4);
    assert!((rmts_cap(theta) - 0.818).abs() < 1e-3);
}

/// Section I: "the famous N(2^{1/N} − 1) bound for RMS".
#[test]
fn ll_bound_values() {
    assert_eq!(ll_bound(1), 1.0);
    // Θ(2) = 2(√2 − 1).
    assert!((ll_bound(2) - 2.0 * (2f64.sqrt() - 1.0)).abs() < 1e-12);
    // "in the worst case 69.3%".
    assert!(ll_bound(100_000) > 0.693 && ll_bound(100_000) < 0.6932);
}

/// Section V examples: "K = 3: 3(2^{1/3} − 1) ≈ 77.9% < 81.8%" and
/// "K = 2: 2(2^{1/2} − 1) ≈ 82.8% > 81.8%".
#[test]
fn section_v_harmonic_chain_instantiations() {
    assert!((hc_bound(3) - 0.779).abs() < 1e-3);
    assert!((hc_bound(2) - 0.828).abs() < 5e-4);
    let cap_at_infinity = rmts_cap(std::f64::consts::LN_2);
    assert!(hc_bound(3) < cap_at_infinity);
    assert!(hc_bound(2) > cap_at_infinity);
}

/// Section V example as an executable claim: a task set with at most 3
/// harmonic chains and `U_M ≤ 77.9%` is schedulable by RM-TS.
#[test]
fn three_chain_bound_is_achieved() {
    // Chains {10,20,40} × {15,30} × {7,14}: K = 3 distinct chains.
    let ts = TaskSetBuilder::new()
        .task_with_utilization(0.30, Time::new(10_000))
        .task_with_utilization(0.30, Time::new(20_000))
        .task_with_utilization(0.20, Time::new(40_000))
        .task_with_utilization(0.30, Time::new(15_000))
        .task_with_utilization(0.20, Time::new(30_000))
        .task_with_utilization(0.15, Time::new(7_000))
        .task_with_utilization(0.10, Time::new(14_000))
        .build()
        .unwrap();
    use rmts::taskmodel::harmonic::chain_count;
    assert_eq!(chain_count(&ts), 3);

    let m = 2;
    let alg = RmTs::new().with_bound(HarmonicChain);
    let lambda = alg.effective_bound(&ts);
    // The effective bound is min(HC(3), 2Θ(7)/(1+Θ(7))).
    assert!(lambda >= hc_bound(3).min(rmts_cap(ll_bound(7))) - 1e-12);
    // This set's U_M ≈ 0.775 ≤ λ: must be accepted and valid.
    assert!(ts.normalized_utilization(m) <= lambda);
    let partition = alg.partition(&ts, m).expect("within the 3-chain bound");
    assert!(partition.verify_rta());
    assert!(simulate_partitioned(&partition.workloads(), SimConfig::default()).all_deadlines_met());
}

/// Definition 1 boundary behavior: a task at exactly `Θ/(1+Θ)` is light.
#[test]
fn light_definition_boundary() {
    use rmts::bounds::thresholds::is_light_set;
    // N = 4 → Θ ≈ 0.7568, threshold ≈ 0.43075. Build tasks at just below.
    let thr = light_threshold(ll_bound(4));
    let period = 1_000_000u64;
    let c = ((period as f64) * thr).floor() as u64;
    let mut b = TaskSetBuilder::new();
    for _ in 0..4 {
        b = b.task(c, period);
    }
    let ts = b.build().unwrap();
    assert!(is_light_set(&ts));
}

/// Section I: strict partitioned scheduling cannot exceed 50% in the worst
/// case; splitting overcomes it. The classic M+1 adversary at U_i = 0.5+ε.
#[test]
fn fifty_percent_wall_and_its_removal() {
    let mut b = TaskSetBuilder::new();
    for _ in 0..5 {
        b = b.task(501, 1000);
    }
    let ts = b.build().unwrap(); // 5 tasks of U = 0.501 on M = 4
    let m = 4;
    // No-splitting partitioned RM fails although U_M ≈ 0.626.
    assert!(!PartitionedRm::ffd_rta().accepts(&ts, m));
    // RM-TS splits one task and succeeds.
    let partition = RmTs::new().partition(&ts, m).unwrap();
    assert_eq!(partition.split_tasks().len(), 1);
    assert!(partition.verify_rta());
}
