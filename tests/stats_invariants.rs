//! Observability invariants across the stack.
//!
//! The recorder is strictly opt-in, so these tests pin down the properties
//! the counters must keep once a recording *is* active:
//!
//! * cache accounting balances: every probe is either a hit or a miss;
//! * cached and scratch admission report identical *decision* counters
//!   (`core.admission.*`) — the cache may change how a verdict is reached,
//!   never which verdict;
//! * snapshots survive a JSON round trip through the vendored serde_json;
//! * rejected partitionings carry typed diagnostics (phase, task,
//!   per-processor bottlenecks).

use rmts::obs;
use rmts::prelude::*;

/// A light task set that RM-TS/light accepts on 2 processors with at least
/// one split (near-breakdown harmonic load).
fn tight_set() -> TaskSet {
    let mut b = TaskSetBuilder::new();
    for _ in 0..8 {
        b = b.task_ms(19, 80);
    }
    b.build().unwrap()
}

/// An overloaded set every algorithm must reject.
fn overloaded_set() -> TaskSet {
    let mut b = TaskSetBuilder::new();
    for _ in 0..6 {
        b = b.task_ms(70, 100);
    }
    b.build().unwrap()
}

#[test]
fn cache_hits_plus_misses_equal_probes() {
    let ts = tight_set();
    let (result, snap) = obs::record(|| RmTsLight::new().partition(&ts, 2));
    assert!(result.is_ok());
    let probes = snap.counter("rta.cache.probes");
    assert!(probes > 0, "a partitioning run must issue probes");
    assert_eq!(
        snap.counter("rta.cache.hits") + snap.counter("rta.cache.misses"),
        probes
    );
}

#[test]
fn cached_and_scratch_report_identical_decision_counters() {
    let sets = [tight_set(), overloaded_set()];
    for (i, ts) in sets.iter().enumerate() {
        let (a, cached) = obs::record(|| {
            RmTsLight::new()
                .with_policy(AdmissionPolicy::exact())
                .partition(ts, 2)
        });
        let (b, scratch) = obs::record(|| {
            RmTsLight::new()
                .with_policy(AdmissionPolicy::exact().uncached())
                .partition(ts, 2)
        });
        assert_eq!(a.is_ok(), b.is_ok(), "set {i}: verdicts diverged");
        for key in [
            "core.admission.probes",
            "core.admission.admitted",
            "core.admission.rejected",
            "core.maxsplit.calls",
            "core.engine.whole_assignments",
            "core.engine.splits",
        ] {
            assert_eq!(
                cached.counter(key),
                scratch.counter(key),
                "set {i}: {key} differs between cached and scratch admission"
            );
        }
        // The *mechanism* counters must belong to exactly one path.
        assert!(cached.counter("rta.cache.probes") > 0);
        assert_eq!(scratch.counter("rta.cache.probes"), 0);
        assert_eq!(cached.counter("rta.scratch.fixed_points"), 0);
        assert!(scratch.counter("rta.scratch.fixed_points") > 0);
    }
}

#[test]
fn snapshot_round_trips_through_json() {
    let ts = tight_set();
    let (_, snap) = obs::record(|| {
        let part = RmTsLight::new().partition(&ts, 2).unwrap();
        simulate_partitioned(&part.workloads(), SimConfig::default())
    });
    assert!(!snap.is_empty());
    assert!(snap.counter("sim.events") > 0, "simulation must be visible");
    let json = serde_json::to_string(&snap).unwrap();
    let back: StatsSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(back, snap);
    // Pretty printing parses back too (the CLI uses this form).
    let pretty = serde_json::to_string_pretty(&snap).unwrap();
    let back2: StatsSnapshot = serde_json::from_str(&pretty).unwrap();
    assert_eq!(back2, snap);
}

#[test]
fn rejection_carries_phase_task_and_bottlenecks() {
    let ts = overloaded_set();
    let err = RmTsLight::new()
        .partition(&ts, 2)
        .expect_err("overloaded set must be rejected");
    assert_eq!(err.phase, PartitionPhase::AssignNormal);
    assert!(err.task.is_some(), "a rejected task must be named");
    assert!(!err.unassigned.is_empty());
    assert!(err.unassigned.contains(&err.task.unwrap()));
    // Every non-empty processor of the partial partition reports its most
    // critical task (Definition 2's bottleneck notion applied per host).
    let busy = err
        .partial
        .processors
        .iter()
        .filter(|w| !w.is_empty())
        .count();
    assert_eq!(err.bottlenecks.len(), busy);
    for b in &err.bottlenecks {
        assert!(b.processor < err.partial.processors.len());
        if let (Some(resp), Some(slack)) = (b.response, b.slack) {
            assert_eq!(resp + slack, b.deadline);
        }
    }
}

#[test]
fn strict_partitioning_rejects_in_place_phase() {
    let ts = overloaded_set();
    let err = PartitionedRm::ffd_rta()
        .partition(&ts, 2)
        .expect_err("overloaded set must be rejected");
    assert_eq!(err.phase, PartitionPhase::Place);
    assert!(err.task.is_some());
}

#[test]
fn recorder_is_off_by_default() {
    let ts = tight_set();
    assert!(!obs::enabled());
    let _ = RmTsLight::new().partition(&ts, 2).unwrap();
    // A recording opened *afterwards* sees none of that work.
    let (_, snap) = obs::record(|| ());
    assert!(snap.is_empty());
}
