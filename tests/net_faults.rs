//! Fault-injection battery for the TCP front end: malformed JSON,
//! oversized lines, half-closed sockets, mid-line disconnects, and
//! slow-loris writers. The invariant under every fault is the same —
//! answer a **typed error line** or drop the connection **cleanly**;
//! never panic, never hang, never poison a shard. After each fault a
//! fresh connection must still get correct answers.

use rmts::net::{ErrorRecord, NetConfig, Server};
use rmts::svc::{wire, AnalyzeRequest, ServiceConfig};
use rmts_core::AlgorithmSpec;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

fn start_server(cfg: NetConfig) -> Server {
    Server::start(cfg.with_service(ServiceConfig::new().with_shards(2).with_queue_capacity(8)))
        .unwrap()
}

fn analyze_line() -> String {
    serde_json::to_string(&AnalyzeRequest::new(
        vec![(1, 4), (2, 8), (2, 8), (4, 16)],
        2,
        AlgorithmSpec::RmTsLight,
    ))
    .unwrap()
}

/// The liveness probe run after every fault: a fresh connection submits a
/// real request and must get a correct answer — the fault stayed confined
/// to its own connection.
fn assert_still_serving(server: &Server) {
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    conn.write_all(format!("{}\n", analyze_line()).as_bytes())
        .unwrap();
    let mut reader = BufReader::new(conn);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let rec: wire::ResponseRecord = serde_json::from_str(&line)
        .unwrap_or_else(|e| panic!("fresh connection got {line:?}: {e}"));
    assert!(
        matches!(rec.outcome.verdict, rmts::svc::Verdict::Accepted { .. }),
        "fresh connection after a fault must still answer correctly"
    );
}

#[test]
fn malformed_lines_get_typed_errors_and_the_connection_survives() {
    let server = start_server(NetConfig::new());
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    // Three shapes of malformed: not JSON, JSON non-object, unknown version.
    conn.write_all(b"this is not json\n[1,2,3]\n{\"version\":9}\n")
        .unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    for expectation in [
        "not json",
        "not a JSON object",
        "unsupported protocol version 9",
    ] {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let rec: ErrorRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(rec.error, "malformed");
        assert!(
            rec.detail.contains(expectation) || !rec.detail.is_empty(),
            "typed detail present: {rec:?}"
        );
    }
    // The same connection still serves real requests afterwards.
    conn.write_all(format!("{}\n", analyze_line()).as_bytes())
        .unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let rec: wire::ResponseRecord = serde_json::from_str(&line).unwrap();
    assert_eq!(rec.index, 0, "error lines consume no response ordinal");
    drop(conn);
    assert_still_serving(&server);
    server.stop().unwrap();
    assert_eq!(server.net_stats().malformed, 3);
}

#[test]
fn oversized_lines_answer_typed_then_drop_the_connection() {
    let server = start_server(NetConfig::new().with_max_line_len(1024));
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    let huge = format!("{{\"pad\":\"{}\"}}\n", "x".repeat(4096));
    conn.write_all(huge.as_bytes()).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let rec: ErrorRecord = serde_json::from_str(&line).unwrap();
    assert_eq!(rec.error, "oversized");
    assert!(rec.detail.contains("1024"), "{rec:?}");
    // After the typed answer the server drops the connection: the next
    // read sees EOF, not a hang.
    let mut rest = String::new();
    let n = reader.read_to_string(&mut rest).unwrap_or(0);
    assert_eq!(n, 0, "connection closed after oversized line, got {rest:?}");
    assert_still_serving(&server);
    server.stop().unwrap();
    assert_eq!(server.net_stats().oversized, 1);
}

#[test]
fn midline_disconnect_is_a_clean_counted_drop() {
    let server = start_server(NetConfig::new());
    for _ in 0..3 {
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        // Half a JSON line, then vanish.
        conn.write_all(b"{\"taskset\":[[1,4],[2,8").unwrap();
        conn.shutdown(Shutdown::Both).unwrap();
    }
    // The drops are asynchronous; wait for the server to observe them.
    for _ in 0..500 {
        if server.net_stats().disconnects == 3 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(server.net_stats().disconnects, 3);
    assert_still_serving(&server);
    server.stop().unwrap();
}

#[test]
fn half_closed_socket_still_receives_its_responses() {
    // A client that pipelines requests and half-closes its write side
    // must still receive every answer before the server hangs up.
    let server = start_server(NetConfig::new());
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    let line = analyze_line();
    conn.write_all(format!("{line}\n{line}\n").as_bytes())
        .unwrap();
    conn.shutdown(Shutdown::Write).unwrap();
    let mut reader = BufReader::new(conn);
    let mut answers = Vec::new();
    for l in reader.by_ref().lines() {
        answers.push(l.unwrap());
    }
    assert_eq!(
        answers.len(),
        2,
        "both pipelined answers arrive after half-close"
    );
    for (i, l) in answers.iter().enumerate() {
        let rec: wire::ResponseRecord = serde_json::from_str(l).unwrap();
        assert_eq!(rec.index, i);
    }
    assert_still_serving(&server);
    server.stop().unwrap();
    // A write-side half-close with no pending line is a *clean* goodbye.
    assert_eq!(server.net_stats().disconnects, 0);
}

#[test]
fn slow_loris_writer_is_dropped_on_the_read_timeout() {
    let server = start_server(NetConfig::new().with_read_timeout(Some(Duration::from_millis(50))));
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    // Trickle bytes of a never-terminated line slower than the timeout
    // can tolerate, then observe the server hanging up on us.
    conn.write_all(b"{\"task").unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut buf = String::new();
    // read_line returns 0 (EOF) once the server times the connection out;
    // bound the client side too so a server hang fails the test instead
    // of wedging it.
    reader
        .get_ref()
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let n = reader.read_line(&mut buf).unwrap_or(0);
    assert_eq!(
        n, 0,
        "server must drop the slow-loris connection, got {buf:?}"
    );
    for _ in 0..500 {
        if server.net_stats().disconnects == 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(server.net_stats().disconnects, 1, "the drop is counted");
    assert_still_serving(&server);
    server.stop().unwrap();
}

#[test]
fn idle_connection_times_out_quietly() {
    let server = start_server(NetConfig::new().with_read_timeout(Some(Duration::from_millis(50))));
    let conn = TcpStream::connect(server.addr()).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut reader = BufReader::new(conn);
    let mut buf = String::new();
    let n = reader.read_line(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "idle connection is closed");
    assert_eq!(
        server.net_stats().disconnects,
        0,
        "an idle timeout with no pending line is not an unclean disconnect"
    );
    assert_still_serving(&server);
    server.stop().unwrap();
}

#[test]
fn connection_reset_does_not_poison_the_service() {
    // Abort (RST) a connection with a request in flight; the service and
    // every other connection keep working.
    let server = start_server(NetConfig::new());
    {
        let conn = TcpStream::connect(server.addr()).unwrap();
        // SO_LINGER(0) turns close into RST.
        let mut c = conn;
        c.write_all(format!("{}\n", analyze_line()).as_bytes())
            .unwrap();
        // Drop without reading the answer: the server's write fails.
        c.shutdown(Shutdown::Both).unwrap();
    }
    assert_still_serving(&server);
    assert_still_serving(&server);
    let stats = server.stop().unwrap();
    assert_eq!(stats.panics, 0, "no shard panic under connection churn");
}

#[test]
fn rate_limited_lines_do_not_consume_response_ordinals() {
    let server = start_server(NetConfig::new().with_rate(1.0, 2.0));
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    let line = analyze_line();
    // Burst of 3 against a burst capacity of 2: the third answers typed.
    conn.write_all(format!("{line}\n{line}\n{line}\n").as_bytes())
        .unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut kinds = Vec::new();
    for _ in 0..3 {
        let mut l = String::new();
        reader.read_line(&mut l).unwrap();
        if let Ok(rec) = serde_json::from_str::<wire::ResponseRecord>(&l) {
            kinds.push(format!("response:{}", rec.index));
        } else {
            let rec: ErrorRecord = serde_json::from_str(&l).unwrap();
            kinds.push(format!("error:{}", rec.error));
        }
    }
    assert_eq!(
        kinds,
        vec!["response:0", "response:1", "error:rate_limited"],
        "indices stay dense across rate-limited lines"
    );
    drop(conn);
    assert_still_serving(&server);
    server.stop().unwrap();
}
