//! Replays the checked-in reproducer corpus (`tests/corpus/`).
//!
//! Every file is a self-contained [`rmts::verify::Reproducer`]: a shrunk
//! task set plus the oracle that produced it and the expected outcome
//! (`Diverges` for fault-injection counterexamples, `Clean` for anchors).
//! Replaying them in tier-1 pins past divergences forever: a regression
//! that re-opens one, or an oracle change that silences one, fails here.

use rmts::verify::{load_corpus, replay_corpus, Expectation, REPRO_SCHEMA};
use std::path::Path;

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn corpus_replays_and_matches_expectations() {
    let replayed = replay_corpus(&corpus_dir(), 2_000_000)
        .unwrap_or_else(|failures| panic!("corpus replay failed:\n{}", failures.join("\n")));
    assert!(
        replayed >= 2,
        "corpus unexpectedly small: {replayed} reproducer(s)"
    );
}

#[test]
fn corpus_is_well_formed() {
    let repros = load_corpus(&corpus_dir()).expect("corpus parses");
    let mut has_divergent = false;
    let mut has_clean = false;
    for r in &repros {
        assert_eq!(r.schema, REPRO_SCHEMA, "{}: stale schema", r.name);
        assert!(!r.taskset.is_empty(), "{}: empty task set", r.name);
        assert!(r.m >= 1, "{}: zero processors", r.name);
        match r.expect {
            Expectation::Diverges => {
                has_divergent = true;
                assert!(
                    r.divergence.is_some(),
                    "{}: divergent reproducer without a recorded divergence",
                    r.name
                );
                assert!(
                    r.taskset.len() <= 4,
                    "{}: reproducer not shrunk ({} tasks)",
                    r.name,
                    r.taskset.len()
                );
            }
            Expectation::Clean => has_clean = true,
        }
    }
    assert!(has_divergent, "corpus lost its divergent reproducers");
    assert!(has_clean, "corpus lost its clean anchor");
}
