//! Property-based invariants of the partitioning algorithms.

use proptest::prelude::*;
use rmts::core::overhead::{inflate, overhead_tolerance, OverheadModel};
use rmts::core::ProcessorRole;
use rmts::prelude::*;
use rmts::taskmodel::TaskSet;

/// Strategy: a feasible-ish random task set plus a processor count.
fn arb_instance() -> impl Strategy<Value = (TaskSet, usize)> {
    (2usize..=4, 4usize..=12, 40u64..95).prop_flat_map(|(m, n, u_pct)| {
        let total = u_pct as f64 / 100.0 * m as f64;
        proptest::collection::vec((1u64..=4, 1u64..100), n).prop_map(move |raw| {
            // Periods from a divisor-friendly menu; utilizations from raw
            // weights normalized to the target total.
            let menu = [5_000u64, 10_000, 15_000, 20_000, 30_000, 60_000];
            let wsum: f64 = raw.iter().map(|&(_, w)| w as f64).sum();
            let tasks: Vec<Task> = raw
                .iter()
                .enumerate()
                .map(|(i, &(pm, w))| {
                    let t = menu[(pm as usize + i) % menu.len()];
                    let u = (total * w as f64 / wsum).min(0.95);
                    let c = ((t as f64) * u).floor().max(1.0) as u64;
                    Task::from_ticks(i as u32, c.min(t), t).unwrap()
                })
                .collect();
            (TaskSet::new(tasks).unwrap(), m)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Accepted partitions conserve every task's budget exactly, pass RTA,
    /// and never split a task across fewer than two processors.
    #[test]
    fn accepted_partitions_are_wellformed((ts, m) in arb_instance()) {
        for alg in [&RmTs::new() as &dyn Partitioner, &RmTsLight::new()] {
            let Ok(part) = alg.partition(&ts, m) else { continue };
            prop_assert!(part.covers(&ts), "{}: budget mismatch", alg.name());
            prop_assert!(part.verify_rta(), "{}: RTA failed", alg.name());
            prop_assert_eq!(part.num_processors(), m);
            for plan in part.plans.values() {
                if plan.is_split() {
                    let mut hosts: Vec<usize> =
                        plan.parts().map(|p| p.processor).collect();
                    let total_parts = hosts.len();
                    hosts.dedup();
                    prop_assert_eq!(hosts.len(), total_parts,
                        "a task's subtasks must be on pairwise distinct processors");
                    prop_assert!(total_parts >= 2);
                }
            }
        }
    }

    /// RM-TS/light: body subtasks have the highest priority on their host
    /// processor (paper Lemma 2).
    #[test]
    fn lemma2_body_subtasks_have_highest_local_priority((ts, m) in arb_instance()) {
        let Ok(part) = RmTsLight::new().partition(&ts, m) else { return Ok(()) };
        for proc in &part.processors {
            for s in proc.workload() {
                if s.kind.is_body() {
                    let top = proc.highest_priority().unwrap();
                    prop_assert_eq!(top.parent, s.parent,
                        "body subtask must be the top priority on P{}", proc.index);
                }
            }
        }
    }

    /// The number of split tasks is at most M − 1: every split closes one
    /// processor, and the last processor cannot leave a remainder behind
    /// in an accepted partition.
    #[test]
    fn split_count_bounded_by_m_minus_1((ts, m) in arb_instance()) {
        for alg in [&RmTs::new() as &dyn Partitioner, &RmTsLight::new()] {
            let Ok(part) = alg.partition(&ts, m) else { continue };
            prop_assert!(part.split_tasks().len() < m,
                "{}: {} splits on {} processors", alg.name(), part.split_tasks().len(), m);
        }
    }

    /// Tail subtasks satisfy Eq. (1): Δ_tail = T − Σ body responses, and
    /// body budgets sum with the tail budget to C.
    #[test]
    fn eq1_synthetic_deadlines_hold((ts, m) in arb_instance()) {
        let Ok(part) = RmTs::new().partition(&ts, m) else { return Ok(()) };
        for plan in part.plans.values() {
            if !plan.is_split() { continue; }
            let subs = plan.subtasks();
            let tail = subs.last().unwrap().0;
            prop_assert!(tail.kind.is_tail());
            prop_assert_eq!(tail.deadline, plan.task().period - plan.body_response());
            let budget: Time = subs.iter().map(|(s, _)| s.wcet).sum();
            prop_assert_eq!(budget, plan.task().wcet);
        }
    }

    /// Dedicated processors host exactly one task, and that task's
    /// utilization exceeds the effective bound.
    #[test]
    fn dedicated_processors_are_exclusive((ts, m) in arb_instance()) {
        let alg = RmTs::new();
        let Ok(part) = alg.partition(&ts, m) else { return Ok(()) };
        let lambda = alg.effective_bound(&ts);
        for proc in &part.processors {
            if proc.role == ProcessorRole::Dedicated {
                prop_assert_eq!(proc.len(), 1);
                prop_assert!(proc.workload()[0].utilization() > lambda - 1e-9);
            }
        }
    }

    /// Monotonicity in processors: if an algorithm accepts on m processors,
    /// it also accepts on m + 1 (more capacity never hurts these
    /// worst-fit-style algorithms on the same input).
    #[test]
    fn more_processors_never_hurt_rmts_light((ts, m) in arb_instance()) {
        if RmTsLight::new().accepts(&ts, m) {
            prop_assert!(RmTsLight::new().accepts(&ts, m + 1));
        }
    }

    /// Every accepted partition passes the independent structural audit
    /// (budget conservation, chain shape, distinct hosts, Eq. (1)).
    #[test]
    fn accepted_partitions_audit_clean((ts, m) in arb_instance()) {
        for alg in [&RmTs::new() as &dyn Partitioner, &RmTsLight::new()] {
            let Ok(part) = alg.partition(&ts, m) else { continue };
            let errors = audit(&part, &ts);
            prop_assert!(errors.is_empty(),
                "{}: audit found {:?}", alg.name(), errors);
        }
    }

    /// Overhead tolerance is exact on random accepted partitions: the
    /// reported cost verifies, one more tick does not.
    #[test]
    fn overhead_tolerance_tight((ts, m) in arb_instance()) {
        let Ok(part) = RmTs::new().partition(&ts, m) else { return Ok(()) };
        let tol = overhead_tolerance(&part);
        prop_assert!(inflate(&part, &OverheadModel::uniform(tol)).verify_rta());
        // Tightness only applies below the saturation point: inflation
        // clamps budgets at the synthetic deadline, so a processor hosting
        // a single task verifies at *any* cost and `overhead_tolerance`
        // returns its upper bound (the smallest deadline) instead.
        let min_deadline = part
            .processors
            .iter()
            .flat_map(|p| p.workload())
            .map(|s| s.deadline)
            .min()
            .unwrap();
        if tol < min_deadline {
            let one_more = OverheadModel::uniform(tol + Time::new(1));
            prop_assert!(!inflate(&part, &one_more).verify_rta(),
                "tolerance {tol} was not maximal");
        }
    }
}
