//! Property tests for the `AlgorithmSpec` grammar.
//!
//! The spec string is the algorithm's identity everywhere results are
//! recorded — sweep artifacts, wire requests, fuzz reproducers — so the
//! grammar must be *lossless*: `parse ∘ display == id` over the entire
//! spec space, not just the catalogue. A lossy rename (the old
//! `as_str`/`parse` pair collapsed every `PartitionedRm` configuration to
//! `"prm"`) silently mislabels whichever variant produced a result.

use proptest::prelude::*;
use rmts::core::baselines::SortOrder;
use rmts::prelude::*;

/// The *full* spec space — every representable configuration, including
/// matrix cells the curated catalogue omits: 4 bounds + 3 fixed
/// algorithms + the 4 × 4 × 4 `fit × admission × sort` cube.
fn full_space() -> Vec<AlgorithmSpec> {
    let mut v: Vec<AlgorithmSpec> = BoundSpec::ALL
        .iter()
        .map(|&bound| AlgorithmSpec::RmTs { bound })
        .collect();
    v.extend([
        AlgorithmSpec::RmTsLight,
        AlgorithmSpec::Spa1,
        AlgorithmSpec::Spa2,
    ]);
    for fit in Fit::ALL {
        for admission in UniAdmission::ALL {
            for sort in SortOrder::ALL {
                v.push(AlgorithmSpec::PartitionedRm {
                    fit,
                    admission,
                    sort,
                });
            }
        }
    }
    v
}

/// Strategy: uniform draw over the full spec space.
fn arb_spec() -> impl Strategy<Value = AlgorithmSpec> {
    let space = full_space();
    (0..space.len()).prop_map(move |i| space[i])
}

/// Strategy: an arbitrary short ASCII string (printable range, which
/// covers the grammar's `:` and `-` separators).
fn arb_ascii(max_len: usize) -> impl Strategy<Value = String> {
    collection::vec(32u8..127, 0..max_len)
        .prop_map(|bytes| bytes.into_iter().map(char::from).collect())
}

/// Strategy: a short lowercase token, the shape grammar tokens take.
fn arb_token() -> impl Strategy<Value = String> {
    collection::vec(b'a'..=b'z', 1..7).prop_map(|bytes| bytes.into_iter().map(char::from).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The headline property: displaying any spec and parsing the result
    /// back is the identity.
    #[test]
    fn parse_after_display_is_identity(spec in arb_spec()) {
        let rendered = spec.to_string();
        prop_assert_eq!(rendered.parse::<AlgorithmSpec>(), Ok(spec), "via {}", rendered);
    }

    /// Canonical strings are *fixed points*: re-rendering a parsed spec
    /// reproduces the exact input string, so spec names in artifacts can
    /// be compared textually.
    #[test]
    fn display_is_canonical(spec in arb_spec()) {
        let rendered = spec.to_string();
        let reparsed: AlgorithmSpec = rendered.parse().unwrap();
        prop_assert_eq!(reparsed.to_string(), rendered);
    }

    /// The parser never panics, whatever the input — it either produces a
    /// spec or a `SpecError` naming the offending token.
    #[test]
    fn parser_is_total(s in arb_ascii(24)) {
        let _ = s.parse::<AlgorithmSpec>();
    }

    /// Near-grammar garbage (valid shape, scrambled tokens) is rejected
    /// with an error that quotes the token that broke parsing.
    #[test]
    fn errors_name_the_offending_token(tok in arb_token()) {
        prop_assume!(Fit::from_token(&tok).is_none());
        let s = format!("prm:{tok}-rta:du");
        match s.parse::<AlgorithmSpec>() {
            Ok(spec) => prop_assert!(false, "{} unexpectedly parsed as {}", s, spec),
            Err(e) => prop_assert!(
                e.to_string().contains(tok.as_str()),
                "error for {} does not name the token: {}", s, e
            ),
        }
    }
}

#[test]
fn catalogue_round_trips_and_is_distinct() {
    // Belt and braces alongside the property: the concrete catalogue both
    // round-trips and renders pairwise-distinct names.
    let mut seen = std::collections::BTreeSet::new();
    for spec in AlgorithmSpec::catalogue() {
        let rendered = spec.to_string();
        assert_eq!(rendered.parse::<AlgorithmSpec>(), Ok(spec));
        assert!(
            seen.insert(rendered.clone()),
            "duplicate spec name {rendered}"
        );
    }
    assert!(seen.len() >= 20, "catalogue too small: {}", seen.len());
}
