//! Protocol battery for the TCP front end: over-the-wire answers must be
//! **bit-identical** to in-process [`Service`] answers — v1 analyze lines,
//! v2 session streams, pipelining, interleaved clients, and kill/restart
//! warm starts from the memo snapshot.

use rmts::net::{NetConfig, Server};
use rmts::svc::{
    render_stream_responses, wire, AnalyzeRequest, RepartitionRequest, Request, Service,
    ServiceConfig,
};
use rmts::taskmodel::{Task, TaskSetDelta};
use rmts_core::AlgorithmSpec;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

/// A self-cleaning temp path for snapshot files.
struct TempPath(PathBuf);

impl TempPath {
    fn new(name: &str) -> TempPath {
        TempPath(std::env::temp_dir().join(format!("{}_{name}", std::process::id())))
    }
    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn service_config() -> ServiceConfig {
    ServiceConfig::new().with_shards(3).with_queue_capacity(16)
}

fn start_server() -> Server {
    Server::start(NetConfig::new().with_service(service_config())).unwrap()
}

/// A JSONL client over one persistent connection.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.addr()).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client {
            writer: stream,
            reader,
        }
    }

    fn send_lines(&mut self, lines: &[String]) {
        let mut doc = String::new();
        for l in lines {
            doc.push_str(l);
            doc.push('\n');
        }
        self.writer.write_all(doc.as_bytes()).unwrap();
        self.writer.flush().unwrap();
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        assert!(line.ends_with('\n'), "server closed mid-stream: {line:?}");
        line.trim_end().to_string()
    }

    fn read_lines(&mut self, n: usize) -> Vec<String> {
        (0..n).map(|_| self.read_line()).collect()
    }
}

fn analyze(pairs: Vec<(u64, u64)>, m: usize) -> AnalyzeRequest {
    AnalyzeRequest::new(pairs, m, AlgorithmSpec::RmTsLight)
}

fn to_line(req: &Request) -> String {
    match req {
        Request::Analyze(r) => serde_json::to_string(r).unwrap(),
        Request::Repartition(r) => serde_json::to_string(r).unwrap(),
    }
}

/// A mixed v1/v2 stream: distinct sets, exact duplicates (memo hits), and
/// a session script with incremental deltas.
fn mixed_stream() -> Vec<Request> {
    let base = analyze(vec![(1, 4), (2, 8), (2, 8), (4, 16), (3, 12)], 2);
    vec![
        Request::Analyze(analyze(vec![(1, 4), (2, 8)], 2)),
        Request::Analyze(analyze(vec![(1, 4), (2, 8), (2, 8), (4, 16)], 2)),
        // Duplicate of the first line: a memo hit on both paths.
        Request::Analyze(analyze(vec![(1, 4), (2, 8)], 2)),
        Request::Repartition(RepartitionRequest::open("wire-s", base)),
        Request::Repartition(RepartitionRequest::delta(
            "wire-s",
            TaskSetDelta::update(Task::from_ticks(1, 3, 8).unwrap()),
        )),
        Request::Analyze(analyze(vec![(2, 4), (2, 8)], 1)),
        Request::Repartition(RepartitionRequest::delta(
            "wire-s",
            TaskSetDelta::remove(rmts::taskmodel::TaskId(4)),
        )),
        // Permuted duplicate of line 1: canonicalization makes it a hit.
        Request::Analyze(analyze(vec![(2, 8), (1, 4)], 2)),
    ]
}

#[test]
fn wire_stream_is_bit_identical_to_in_process_run_stream() {
    // One connection pipelining a mixed v1/v2 stream must produce, line
    // for line, the bytes `run_stream` + `render_stream_responses` yield
    // for the same requests on an identically configured service.
    let reqs = mixed_stream();
    let reference = Service::new(service_config());
    let expected = render_stream_responses(&reference.run_stream(reqs.clone()));
    let expected: Vec<&str> = expected.lines().collect();

    let server = start_server();
    let mut client = Client::connect(&server);
    let lines: Vec<String> = reqs.iter().map(to_line).collect();
    client.send_lines(&lines);
    let got = client.read_lines(lines.len());
    for (i, (got, want)) in got.iter().zip(expected.iter()).enumerate() {
        assert_eq!(got, want, "response line {i} differs over the wire");
    }
    drop(client);
    server.stop().unwrap();
}

#[test]
fn pipelined_requests_are_answered_in_order_with_connection_ordinals() {
    let server = start_server();
    let mut client = Client::connect(&server);
    let lines: Vec<String> = (1..=8)
        .map(|k| serde_json::to_string(&analyze(vec![(1, 4 * k), (2, 8 * k)], 2)).unwrap())
        .collect();
    client.send_lines(&lines);
    for (i, line) in client.read_lines(8).iter().enumerate() {
        let rec: wire::ResponseRecord = serde_json::from_str(line).unwrap();
        assert_eq!(rec.index, i, "per-connection response ordinal");
    }
    drop(client);
    server.stop().unwrap();
}

#[test]
fn second_connection_gets_fresh_ordinals() {
    let server = start_server();
    let line = serde_json::to_string(&analyze(vec![(1, 4), (2, 8)], 2)).unwrap();
    for _ in 0..2 {
        let mut client = Client::connect(&server);
        client.send_lines(std::slice::from_ref(&line));
        let rec: wire::ResponseRecord = serde_json::from_str(&client.read_line()).unwrap();
        assert_eq!(rec.index, 0, "each connection's stream starts at index 0");
    }
    server.stop().unwrap();
}

#[test]
fn interleaved_sessions_from_two_clients_stay_isolated() {
    // Two clients drive two sessions whose ops interleave arbitrarily on
    // the server. Each client's answers must match a dedicated in-process
    // service running only its own script — sessions cannot bleed.
    let base_a = analyze(vec![(1, 4), (2, 8), (2, 8), (4, 16), (3, 12)], 2);
    let base_b = analyze(vec![(2, 6), (3, 9), (4, 12), (6, 18)], 2);
    let script_a = vec![
        Request::Repartition(RepartitionRequest::open("client-a", base_a)),
        Request::Repartition(RepartitionRequest::delta(
            "client-a",
            TaskSetDelta::update(Task::from_ticks(1, 3, 8).unwrap()),
        )),
        Request::Repartition(RepartitionRequest::delta(
            "client-a",
            TaskSetDelta::remove(rmts::taskmodel::TaskId(4)),
        )),
    ];
    let script_b = vec![
        Request::Repartition(RepartitionRequest::open("client-b", base_b)),
        Request::Repartition(RepartitionRequest::delta(
            "client-b",
            TaskSetDelta::add(Task::from_ticks(9, 1, 36).unwrap()),
        )),
        Request::Repartition(RepartitionRequest::delta(
            "client-b",
            TaskSetDelta::update(Task::from_ticks(0, 3, 6).unwrap()),
        )),
    ];

    let server = start_server();
    let mut a = Client::connect(&server);
    let mut b = Client::connect(&server);
    // Interleave: a0, b0, b1, a1, a2, b2 — each client reads its answer
    // before the next op so the interleaving is real, not buffered away.
    let mut got_a = Vec::new();
    let mut got_b = Vec::new();
    let step = |client: &mut Client, script: &[Request], got: &mut Vec<String>, idx: usize| {
        client.send_lines(&[to_line(&script[idx])]);
        got.push(client.read_line());
    };
    step(&mut a, &script_a, &mut got_a, 0);
    step(&mut b, &script_b, &mut got_b, 0);
    step(&mut b, &script_b, &mut got_b, 1);
    step(&mut a, &script_a, &mut got_a, 1);
    step(&mut a, &script_a, &mut got_a, 2);
    step(&mut b, &script_b, &mut got_b, 2);
    drop(a);
    drop(b);
    server.stop().unwrap();

    for (script, got) in [(script_a, got_a), (script_b, got_b)] {
        let reference = Service::new(service_config());
        let expected = render_stream_responses(&reference.run_stream(script));
        for (i, (got, want)) in got.iter().zip(expected.lines()).enumerate() {
            // Outcome, path, and session name must agree with a dedicated
            // in-process run; shard numbers may differ (routing hashes
            // both streams onto one fleet), so compare the records
            // field-by-field minus the shard.
            let mut got: wire::SessionRecord = serde_json::from_str(got).unwrap();
            let want: wire::SessionRecord = serde_json::from_str(want).unwrap();
            got.shard = want.shard;
            assert_eq!(got, want, "session op {i}");
        }
    }
}

#[test]
fn kill_restart_serves_warm_from_snapshot() {
    let snap = TempPath::new("net_protocol_snap.bin");
    let reqs: Vec<String> = (1..=4)
        .map(|k| {
            serde_json::to_string(&analyze(vec![(1, 4 * k), (2, 8 * k), (3, 12 * k)], 2)).unwrap()
        })
        .collect();

    // First life: analyze fresh, then stop (drains into the snapshot).
    let snap_path = snap.path().to_path_buf();
    let cfg = move || {
        NetConfig::new()
            .with_service(service_config())
            .with_snapshot(snap_path.clone())
    };
    let server = Server::start(cfg()).unwrap();
    assert_eq!(server.restore_report().restored, 0);
    let mut client = Client::connect(&server);
    client.send_lines(&reqs);
    let first_life = client.read_lines(reqs.len());
    for line in &first_life {
        let rec: wire::ResponseRecord = serde_json::from_str(line).unwrap();
        assert!(!rec.memo_hit, "first life must analyze fresh");
    }
    drop(client);
    server.stop().unwrap();
    assert!(snap.path().exists(), "stop writes the snapshot");

    // Second life: the same questions are all memo hits, and the answers
    // are bit-identical to the first life's.
    let server = Server::start(cfg()).unwrap();
    assert_eq!(server.restore_report().restored, 4);
    assert!(!server.restore_report().stale);
    assert!(!server.restore_report().corrupt);
    let mut client = Client::connect(&server);
    client.send_lines(&reqs);
    let second_life = client.read_lines(reqs.len());
    for (i, (a, b)) in first_life.iter().zip(second_life.iter()).enumerate() {
        let fresh: wire::ResponseRecord = serde_json::from_str(a).unwrap();
        let warm: wire::ResponseRecord = serde_json::from_str(b).unwrap();
        assert!(
            warm.memo_hit,
            "request {i} must warm-start from the snapshot"
        );
        assert_eq!(warm.outcome, fresh.outcome, "request {i} outcome drifted");
        assert_eq!(warm.canonical_hash, fresh.canonical_hash);
        assert_eq!(warm.shard, fresh.shard, "routing must be restore-invariant");
    }
    drop(client);
    let stats = server.stop().unwrap();
    assert_eq!(stats.memo_hits, 4);
    assert_eq!(stats.memo_misses, 0);
}

#[test]
fn foreign_fingerprint_snapshot_is_rejected_cold() {
    use rmts::svc::snapshot::write_snapshot_as;

    let snap = TempPath::new("net_protocol_stale.bin");
    // Produce a genuine snapshot, then rewrite it under a foreign engine
    // fingerprint — as if a different build had written it.
    let svc = Service::new(service_config());
    svc.analyze_batch(vec![analyze(vec![(1, 4), (2, 8)], 2)]);
    let tmp = TempPath::new("net_protocol_stale_src.bin");
    svc.shutdown_with_snapshot(tmp.path()).unwrap();
    let (entries, _) = rmts::svc::snapshot::read_snapshot(tmp.path());
    write_snapshot_as(snap.path(), "rmts-engine/999.0.0/memo-fmt0", &entries).unwrap();

    let server = Server::start(
        NetConfig::new()
            .with_service(service_config())
            .with_snapshot(snap.path()),
    )
    .unwrap();
    let report = server.restore_report();
    assert!(report.stale, "foreign fingerprint must read as stale");
    assert_eq!(
        report.restored, 0,
        "no entry from a stale snapshot is trusted"
    );

    // Cold but working: the same question analyzes fresh.
    let mut client = Client::connect(&server);
    client.send_lines(&[serde_json::to_string(&analyze(vec![(1, 4), (2, 8)], 2)).unwrap()]);
    let rec: wire::ResponseRecord = serde_json::from_str(&client.read_line()).unwrap();
    assert!(!rec.memo_hit);
    assert!(matches!(
        rec.outcome.verdict,
        rmts::svc::Verdict::Accepted { .. }
    ));
    drop(client);
    server.stop().unwrap();
}
